/**
 * @file
 * Integration tests for the full multithreaded superscalar pipeline:
 * architectural correctness against the reference interpreter,
 * misprediction recovery, store-buffer forwarding, multithreaded
 * synchronization, determinism, and the first-order performance
 * effects of each configuration axis.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "core/processor.hh"
#include "isa/interpreter.hh"

namespace sdsp
{
namespace
{

MachineConfig
baseConfig(unsigned threads = 1)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.maxCycles = 1'000'000;
    return cfg;
}

/** Run a program on the pipeline and cross-check every thread's
 *  architectural registers and the memory image against the
 *  reference interpreter. */
SimResult
runChecked(const Program &prog, const MachineConfig &cfg)
{
    Processor cpu(cfg, prog);
    SimResult result = cpu.run();
    EXPECT_TRUE(result.finished);

    Interpreter interp(prog, cfg.numThreads);
    EXPECT_TRUE(interp.run());

    unsigned budget = cfg.regsPerThread();
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        for (unsigned r = 0; r < budget; ++r) {
            EXPECT_EQ(cpu.readReg(static_cast<ThreadId>(t),
                                  static_cast<RegIndex>(r)),
                      interp.reg(static_cast<ThreadId>(t),
                                 static_cast<RegIndex>(r)))
                << "thread " << t << " r" << r;
        }
    }
    EXPECT_EQ(cpu.memory().image(), interp.memory());
    EXPECT_EQ(result.committedInstructions,
              interp.totalInstructionCount());
    return result;
}

Program
countdownLoop(int iterations)
{
    ProgramBuilder b;
    b.dword("out", 0);
    b.ldi(1, iterations);
    b.ldi(2, 0);
    b.label("top");
    b.add(2, 2, 1);
    b.addi(1, 1, -1);
    b.bne(1, 0, "top");
    b.la(3, "out");
    b.st(2, 0, 3);
    b.halt();
    return b.finish();
}

TEST(Processor, StraightLineArithmetic)
{
    ProgramBuilder b;
    b.ldi(1, 6);
    b.ldi(2, 7);
    b.mul(3, 1, 2);
    b.addi(4, 3, -2);
    b.div(5, 3, 1);
    b.halt();
    runChecked(b.finish(), baseConfig());
}

TEST(Processor, LoopWithBranchRecovery)
{
    // The loop's backward branch mispredicts at least once (cold BTB)
    // and at the final iteration; recovery must preserve
    // architectural state.
    SimResult result = runChecked(countdownLoop(50), baseConfig());
    EXPECT_GT(result.cycles, 50u);
}

TEST(Processor, StoreLoadForwardingSameThread)
{
    ProgramBuilder b;
    b.dword("cell", 0);
    b.la(1, "cell");
    b.ldi(2, 77);
    b.st(2, 0, 1);
    b.ld(3, 0, 1); // must forward 77 from the store buffer
    b.addi(4, 3, 1);
    b.halt();
    runChecked(b.finish(), baseConfig());
}

TEST(Processor, LoadWaitsForUnresolvedOlderStore)
{
    // The store's address depends on a long-latency divide; the
    // younger load must not bypass it.
    ProgramBuilder b;
    b.dword("a", 11);
    b.dword("b", 0);
    b.ldi(1, 64);
    b.ldi(2, 8);
    b.div(3, 1, 2);   // 8 = address of "b", slowly
    b.ldi(4, 123);
    b.st(4, 0, 3);    // store to b
    b.ld(5, 8, 0)     // load b (r0 still 0): must see 123
        .halt();
    runChecked(b.finish(), baseConfig());
}

TEST(Processor, FunctionCallThroughJalJr)
{
    ProgramBuilder b;
    b.ldi(1, 5);
    b.jal(10, "double_it");
    b.jal(10, "double_it");
    b.halt();
    b.label("double_it");
    b.add(1, 1, 1);
    b.jr(10);
    runChecked(b.finish(), baseConfig());
}

TEST(Processor, MultithreadedDisjointStores)
{
    ProgramBuilder b;
    b.array("cells", 8);
    b.la(1, "cells");
    b.tid(2);
    b.slli(3, 2, 3);
    b.add(1, 1, 3);
    b.addi(4, 2, 100);
    b.st(4, 0, 1);
    b.halt();
    runChecked(b.finish(), baseConfig(4));
}

TEST(Processor, CrossThreadSpinFlagSynchronization)
{
    ProgramBuilder b;
    b.dword("value", 0);
    b.dword("flag", 0);
    b.tid(2);
    b.bne(2, 0, "consumer");
    b.ldi(3, 432);
    b.la(4, "value");
    b.st(3, 0, 4);
    b.ldi(3, 1);
    b.la(4, "flag");
    b.st(3, 0, 4);
    b.halt();
    b.label("consumer");
    b.la(4, "flag");
    b.label("spinloop");
    b.spin();
    b.ld(3, 0, 4);
    b.beq(3, 0, "spinloop");
    b.la(4, "value");
    b.ld(5, 0, 4);
    b.halt();

    Program prog = b.finish();
    MachineConfig cfg = baseConfig(2);
    Processor cpu(cfg, prog);
    ASSERT_TRUE(cpu.run().finished);
    EXPECT_EQ(cpu.readReg(1, 5), 432u);
}

TEST(Processor, DeterministicCycleCounts)
{
    Program prog = countdownLoop(40);
    MachineConfig cfg = baseConfig(1);
    Processor first(cfg, prog);
    Processor second(cfg, prog);
    EXPECT_EQ(first.run().cycles, second.run().cycles);
}

TEST(Processor, PerThreadCommitCounts)
{
    ProgramBuilder b;
    b.tid(1);
    b.beq(1, 0, "quick");
    b.addi(2, 2, 1);
    b.addi(2, 2, 1);
    b.label("quick");
    b.halt();
    MachineConfig cfg = baseConfig(2);
    Processor cpu(cfg, b.finish());
    ASSERT_TRUE(cpu.run().finished);
    // Thread 0: tid, beq, halt. Thread 1: tid, beq, 2x addi, halt.
    EXPECT_EQ(cpu.committedInstructions(0), 3u);
    EXPECT_EQ(cpu.committedInstructions(1), 5u);
    EXPECT_EQ(cpu.committedInstructions(), 8u);
}

TEST(Processor, RegisterBudgetEnforcedAtLoad)
{
    ProgramBuilder b;
    b.ldi(40, 1);
    b.halt();
    Program prog = b.finish();
    MachineConfig cfg = baseConfig(4); // 32 registers per thread
    EXPECT_EXIT(Processor(cfg, prog), ::testing::ExitedWithCode(1),
                "partition");
}

TEST(Processor, CycleCapReportsUnfinished)
{
    ProgramBuilder b;
    b.label("forever");
    b.j("forever");
    MachineConfig cfg = baseConfig(1);
    cfg.maxCycles = 500;
    Processor cpu(cfg, b.finish());
    SimResult result = cpu.run();
    EXPECT_FALSE(result.finished);
    EXPECT_EQ(result.cycles, 500u);
}

TEST(Processor, BypassingNeverSlower)
{
    // A dependent chain benefits from same-cycle wakeup.
    ProgramBuilder b;
    b.ldi(1, 1);
    for (int i = 0; i < 40; ++i)
        b.add(1, 1, 1);
    b.halt();
    Program prog = b.finish();

    MachineConfig with = baseConfig();
    MachineConfig without = baseConfig();
    without.bypassing = false;
    Cycle cycles_with = Processor(with, prog).run().cycles;
    Cycle cycles_without = Processor(without, prog).run().cycles;
    EXPECT_LT(cycles_with, cycles_without);
}

TEST(Processor, ScoreboardingStallsOnWaw)
{
    // Repeated writes to the same register serialize dispatch under
    // 1-bit scoreboarding but not under full renaming.
    ProgramBuilder b;
    b.dword("sink", 0);
    b.la(9, "sink");
    for (int i = 0; i < 30; ++i) {
        b.ldi(1, i); // WAW chain on r1
        b.st(1, 0, 9);
    }
    b.halt();
    Program prog = b.finish();

    MachineConfig renamed = baseConfig();
    MachineConfig scoreboarded = baseConfig();
    scoreboarded.renameScheme = RenameScheme::Scoreboard1Bit;
    Cycle fast = Processor(renamed, prog).run().cycles;
    Cycle slow = Processor(scoreboarded, prog).run().cycles;
    EXPECT_LT(fast, slow);

    // Architectural results are unaffected.
    runChecked(prog, scoreboarded);
}

TEST(Processor, DeeperSuHelpsIndependentWork)
{
    // Many independent long-latency multiplies: a 64-entry window
    // finds more parallelism than a 16-entry one.
    ProgramBuilder b;
    for (int i = 0; i < 16; ++i) {
        RegIndex rd = static_cast<RegIndex>(1 + (i % 12));
        b.mul(rd, 13, 14);
    }
    b.halt();
    Program prog = b.finish();

    MachineConfig small = baseConfig();
    small.suEntries = 16;
    MachineConfig large = baseConfig();
    large.suEntries = 64;
    EXPECT_LE(Processor(large, prog).run().cycles,
              Processor(small, prog).run().cycles);
}

TEST(Processor, FlexibleCommitBeatsLowestOnlyAcrossThreads)
{
    // Thread 0 stalls on a chain of divides; thread 1 runs free ALU
    // work. Flexible commit lets thread 1 retire past thread 0's
    // incomplete bottom block.
    ProgramBuilder b;
    b.tid(1);
    b.bne(1, 0, "fastpath");
    b.ldi(2, 100);
    b.ldi(3, 3);
    for (int i = 0; i < 6; ++i)
        b.div(2, 2, 3);
    b.halt();
    b.label("fastpath");
    for (int i = 0; i < 40; ++i)
        b.addi(4, 4, 1);
    b.halt();
    Program prog = b.finish();

    MachineConfig flexible = baseConfig(2);
    MachineConfig lowest = baseConfig(2);
    lowest.commitPolicy = CommitPolicy::LowestBlockOnly;

    Processor flex_cpu(flexible, prog);
    SimResult flex = flex_cpu.run();
    Processor low_cpu(lowest, prog);
    SimResult low = low_cpu.run();

    EXPECT_GT(flex_cpu.flexibleCommits(), 0u);
    EXPECT_EQ(low_cpu.flexibleCommits(), 0u);
    EXPECT_LE(flex.cycles, low.cycles);
}

TEST(Processor, EveryFetchPolicyIsArchitecturallyCorrect)
{
    Program prog = countdownLoop(30);
    for (FetchPolicy policy :
         {FetchPolicy::TrueRoundRobin, FetchPolicy::MaskedRoundRobin,
          FetchPolicy::ConditionalSwitch, FetchPolicy::Adaptive}) {
        MachineConfig cfg = baseConfig(2);
        cfg.fetchPolicy = policy;
        runChecked(prog, cfg);
    }
}

TEST(Processor, DirectMappedCacheConfigRuns)
{
    MachineConfig cfg = baseConfig(2);
    cfg.dcache.ways = 1;
    runChecked(countdownLoop(30), cfg);
}

TEST(Processor, CacheStatsPopulated)
{
    ProgramBuilder b;
    b.array("data", 64);
    b.la(1, "data");
    b.ldi(2, 64);
    b.label("top");
    b.ld(3, 0, 1);
    b.addi(1, 1, 8);
    b.addi(2, 2, -1);
    b.bne(2, 0, "top");
    b.halt();
    MachineConfig cfg = baseConfig();
    Processor cpu(cfg, b.finish());
    ASSERT_TRUE(cpu.run().finished);
    EXPECT_GE(cpu.dcache().accesses(), 64u);
    EXPECT_GT(cpu.dcache().misses(), 0u);
    EXPECT_GT(cpu.dcache().hitRate(), 0.5);
}

TEST(Processor, StatsRegistryComplete)
{
    MachineConfig cfg = baseConfig(2);
    Processor cpu(cfg, countdownLoop(10));
    ASSERT_TRUE(cpu.run().finished);
    StatsRegistry registry;
    cpu.reportStats(registry);
    EXPECT_TRUE(registry.has("sim.cycles"));
    EXPECT_TRUE(registry.has("sim.ipc"));
    EXPECT_TRUE(registry.has("sim.committed.thread1"));
    EXPECT_TRUE(registry.has("fetch.blocks"));
    EXPECT_TRUE(registry.has("btb.accuracy"));
    EXPECT_TRUE(registry.has("dcache.hitRate"));
    EXPECT_TRUE(registry.has("fu.IntAlu[0].busyFraction"));
    EXPECT_GT(registry.get("sim.cycles"), 0.0);
}

TEST(Processor, CycleAccountingStats)
{
    MachineConfig cfg = baseConfig(2);
    Processor cpu(cfg, countdownLoop(40));
    SimResult sim = cpu.run();
    ASSERT_TRUE(sim.finished);

    // The issue-width histogram covers every cycle exactly once.
    std::uint64_t histogram_total = 0;
    for (unsigned w = 0; w <= cfg.issueWidth; ++w)
        histogram_total += cpu.issueWidthCycles(w);
    EXPECT_EQ(histogram_total, sim.cycles);
    // Something issued at least once.
    EXPECT_LT(cpu.issueWidthCycles(0), sim.cycles);

    // Mean occupancy is a sensible fraction of the SU capacity.
    EXPECT_GT(cpu.averageSuOccupancy(), 0.0);
    EXPECT_LE(cpu.averageSuOccupancy(),
              static_cast<double>(cfg.suEntries));

    StatsRegistry registry;
    cpu.reportStats(registry);
    EXPECT_TRUE(registry.has("sim.avgSuOccupancy"));
    EXPECT_TRUE(registry.has("sim.issueWidth0.cycles"));
    EXPECT_TRUE(registry.has("fetch.thread1.blocks"));
    // Per-thread fetch blocks sum to the total.
    EXPECT_DOUBLE_EQ(registry.get("fetch.thread0.blocks") +
                         registry.get("fetch.thread1.blocks"),
                     registry.get("fetch.blocks"));
}

TEST(Processor, TraceProducesEvents)
{
    std::ostringstream trace;
    MachineConfig cfg = baseConfig();
    Processor cpu(cfg, countdownLoop(5));
    cpu.setTrace(&trace);
    ASSERT_TRUE(cpu.run().finished);
    std::string text = trace.str();
    EXPECT_NE(text.find("fetch:"), std::string::npos);
    EXPECT_NE(text.find("commit:"), std::string::npos);
    EXPECT_NE(text.find("squash:"), std::string::npos);
}

TEST(Processor, InvalidConfigurationIsFatal)
{
    ProgramBuilder b;
    b.halt();
    Program prog = b.finish();
    MachineConfig cfg = baseConfig();
    cfg.suEntries = 30; // not a multiple of the block size
    EXPECT_EXIT(Processor(cfg, prog), ::testing::ExitedWithCode(1),
                "multiple");
}

TEST(Processor, StoreBufferMustHoldOneBlockOfStores)
{
    // Stores drain only after their SU entry is shifted out, so a
    // block of four stores needs four simultaneous buffer entries;
    // smaller buffers can deadlock and are rejected.
    ProgramBuilder b;
    b.halt();
    Program prog = b.finish();
    MachineConfig cfg = baseConfig();
    cfg.storeBufferEntries = 2;
    EXPECT_EXIT(Processor(cfg, prog), ::testing::ExitedWithCode(1),
                "commit block");
}

TEST(Processor, DenseStoreBlocksDrainWithMinimalBuffer)
{
    // A long run of back-to-back stores (blocks of four stores) must
    // make progress with the minimum legal buffer, exercising the
    // oldest-store slot reservation.
    ProgramBuilder b;
    b.array("sink", 64);
    b.la(9, "sink");
    for (int i = 0; i < 64; ++i)
        b.st(1, static_cast<std::int32_t>((i % 64) * 8), 9);
    b.halt();
    MachineConfig cfg = baseConfig();
    cfg.storeBufferEntries = 4;
    runChecked(b.finish(), cfg);
}

TEST(Processor, PartitionedCacheIsArchitecturallyCorrect)
{
    MachineConfig cfg = baseConfig(4);
    cfg.dcache.partitions = 4;
    runChecked(countdownLoop(30), cfg);
}

TEST(Processor, PrivateBtbBanksAreArchitecturallyCorrect)
{
    MachineConfig cfg = baseConfig(4);
    cfg.btbBanks = 4;
    runChecked(countdownLoop(30), cfg);
}

TEST(Processor, WeightedFetchIsArchitecturallyCorrect)
{
    MachineConfig cfg = baseConfig(3);
    cfg.fetchPolicy = FetchPolicy::WeightedRoundRobin;
    cfg.fetchWeights = {4, 2, 1};
    runChecked(countdownLoop(30), cfg);
}

TEST(Processor, WeightedFetchAdvancesFavoredThread)
{
    // All threads run the same long loop; the favored thread must
    // commit a clear majority of the instructions.
    ProgramBuilder b;
    b.ldi(1, 400);
    b.label("top");
    b.addi(2, 2, 1);
    b.addi(1, 1, -1);
    b.bne(1, 0, "top");
    b.halt();
    Program prog = b.finish();

    MachineConfig cfg = baseConfig(2);
    cfg.fetchPolicy = FetchPolicy::WeightedRoundRobin;
    cfg.fetchWeights = {4, 1};
    Processor cpu(cfg, prog);

    // Sample the moment the favored thread finishes: the starved
    // thread must be far behind at that point.
    const std::uint64_t total = 400 * 3 + 2;
    while (cpu.committedInstructions(0) < total && !cpu.done())
        cpu.step();
    EXPECT_EQ(cpu.committedInstructions(0), total);
    EXPECT_LT(cpu.committedInstructions(1) * 2, total);
}

TEST(Processor, BadFetchWeightsAreFatal)
{
    ProgramBuilder b;
    b.halt();
    Program prog = b.finish();
    MachineConfig cfg = baseConfig(2);
    cfg.fetchPolicy = FetchPolicy::WeightedRoundRobin;
    cfg.fetchWeights = {1, 2, 3}; // arity mismatch
    EXPECT_EXIT(Processor(cfg, prog), ::testing::ExitedWithCode(1),
                "fetchWeights");
}

TEST(Processor, FiniteICacheIsArchitecturallyCorrect)
{
    MachineConfig cfg = baseConfig(2);
    cfg.perfectICache = false;
    runChecked(countdownLoop(40), cfg);
}

TEST(Processor, FiniteICacheCostsCycles)
{
    // A loop whose code exceeds a tiny I-cache runs slower than
    // under the paper's perfect-I-cache assumption.
    ProgramBuilder b;
    b.ldi(1, 40);
    b.label("top");
    for (int i = 0; i < 120; ++i)
        b.addi(2, 2, 1);
    b.addi(1, 1, -1);
    b.bne(1, 0, "top");
    b.halt();
    Program prog = b.finish();

    MachineConfig perfect = baseConfig(1);
    MachineConfig finite = baseConfig(1);
    finite.perfectICache = false;
    finite.icache.sizeBytes = 128; // 8 lines: thrashes on 120 instrs
    finite.icache.lineBytes = 16;

    Processor perfect_cpu(perfect, prog);
    Processor finite_cpu(finite, prog);
    Cycle fast = perfect_cpu.run().cycles;
    Cycle slow = finite_cpu.run().cycles;
    EXPECT_LT(fast, slow);
    ASSERT_NE(finite_cpu.instructionCache(), nullptr);
    EXPECT_GT(finite_cpu.instructionCache()->misses(), 100u);
    EXPECT_EQ(perfect_cpu.instructionCache(), nullptr);
}

TEST(Processor, FiniteICacheWithAllPolicies)
{
    Program prog = countdownLoop(25);
    for (FetchPolicy policy :
         {FetchPolicy::TrueRoundRobin, FetchPolicy::MaskedRoundRobin,
          FetchPolicy::ConditionalSwitch}) {
        MachineConfig cfg = baseConfig(2);
        cfg.fetchPolicy = policy;
        cfg.perfectICache = false;
        runChecked(prog, cfg);
    }
}

TEST(Processor, SpinHintHasNoArchitecturalEffect)
{
    ProgramBuilder b;
    b.ldi(1, 3);
    b.spin();
    b.spin();
    b.addi(1, 1, 1);
    b.halt();
    runChecked(b.finish(), baseConfig());
}

TEST(Processor, WrongPathLoadsAreHarmless)
{
    // Train the BTB to predict a taken branch, then flip the
    // condition: the wrong path contains a load with a garbage
    // address, which must not crash or corrupt state.
    ProgramBuilder b;
    b.dword("safe", 0);
    b.ldi(1, 10);
    b.label("top");
    // r2 becomes a garbage address after the loop exits.
    b.slli(2, 1, 20);
    b.addi(1, 1, -1);
    b.bne(1, 0, "top");
    // Fall-through only on the final iteration, mispredicted taken:
    // the speculative wrong path re-executes "top" with r1 == 0.
    b.ld(3, 0, 0); // architecturally fine: address 0
    b.halt();
    runChecked(b.finish(), baseConfig());
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Unit tests for the functional unit pool: instance allocation,
 * pipelined vs iterative units, writeback-width limits, store
 * completions, cancellation and utilization statistics.
 */

#include <gtest/gtest.h>

#include "core/exec.hh"

namespace sdsp
{
namespace
{

TEST(FuPool, PipelinedUnitAcceptsEveryCycle)
{
    FuPool pool(FuConfig::sdspDefault());
    EXPECT_TRUE(pool.canIssue(FuClass::FpAdd, 1));
    pool.issue(FuClass::FpAdd, 1, 1);
    // Only one FP adder, but it is pipelined: next cycle is free.
    EXPECT_FALSE(pool.canIssue(FuClass::FpAdd, 1));
    EXPECT_TRUE(pool.canIssue(FuClass::FpAdd, 2));
}

TEST(FuPool, IterativeDividerBlocksForItsLatency)
{
    FuConfig cfg = FuConfig::sdspDefault();
    FuPool pool(cfg);
    Cycle done = pool.issue(FuClass::IntDiv, 1, 1);
    EXPECT_EQ(done, 1 + cfg.latencyOf(FuClass::IntDiv));
    for (Cycle t = 1; t < done; ++t)
        EXPECT_FALSE(pool.canIssue(FuClass::IntDiv, t)) << t;
    EXPECT_TRUE(pool.canIssue(FuClass::IntDiv, done));
}

TEST(FuPool, MultipleInstancesIssueSameCycle)
{
    FuPool pool(FuConfig::sdspDefault()); // 4 integer ALUs
    for (Tag seq = 1; seq <= 4; ++seq) {
        ASSERT_TRUE(pool.canIssue(FuClass::IntAlu, 1));
        pool.issue(FuClass::IntAlu, seq, 1);
    }
    EXPECT_FALSE(pool.canIssue(FuClass::IntAlu, 1));
}

TEST(FuPool, CompletionAtLatency)
{
    FuConfig cfg = FuConfig::sdspDefault();
    FuPool pool(cfg);
    pool.issue(FuClass::IntAlu, 7, 5);
    std::vector<FuCompletion> out;
    pool.drainCompletions(5, 8, out);
    EXPECT_TRUE(out.empty()); // latency 1: completes at cycle 6
    pool.drainCompletions(6, 8, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].seq, 7u);
    EXPECT_FALSE(pool.busy());
}

TEST(FuPool, ExtraLatencyDelaysCompletion)
{
    FuPool pool(FuConfig::sdspDefault());
    Cycle done = pool.issue(FuClass::Load, 1, 10, /*extra=*/9);
    EXPECT_EQ(done, 10 + 2 + 9u);
}

TEST(FuPool, WritebackWidthLimitsResults)
{
    FuPool pool(FuConfig::sdspDefault());
    for (Tag seq = 1; seq <= 4; ++seq)
        pool.issue(FuClass::IntAlu, seq, 1);
    std::vector<FuCompletion> out;
    pool.drainCompletions(2, 2, out);
    EXPECT_EQ(out.size(), 2u);
    // Oldest first.
    EXPECT_EQ(out[0].seq, 1u);
    EXPECT_EQ(out[1].seq, 2u);
    out.clear();
    pool.drainCompletions(3, 2, out);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].seq, 3u);
}

TEST(FuPool, StoresDoNotConsumeWritebackWidth)
{
    FuPool pool(FuConfig::sdspEnhanced()); // 2 store units
    pool.issue(FuClass::Store, 1, 1);
    pool.issue(FuClass::Store, 2, 1);
    pool.issue(FuClass::IntAlu, 3, 1);
    std::vector<FuCompletion> out;
    pool.drainCompletions(2, 1, out);
    // Both stores drain for free plus the single counted result.
    EXPECT_EQ(out.size(), 3u);
}

TEST(FuPool, EarlierCompletionsFirstRegardlessOfIssueOrder)
{
    FuPool pool(FuConfig::sdspDefault());
    pool.issue(FuClass::IntDiv, 1, 1); // completes at 13
    pool.issue(FuClass::IntAlu, 2, 5); // completes at 6
    std::vector<FuCompletion> out;
    pool.drainCompletions(13, 8, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].seq, 2u);
    EXPECT_EQ(out[1].seq, 1u);
}

TEST(FuPool, CancelSuppressesDelivery)
{
    FuPool pool(FuConfig::sdspDefault());
    pool.issue(FuClass::IntAlu, 1, 1);
    pool.issue(FuClass::IntAlu, 2, 1);
    pool.cancel(1);
    std::vector<FuCompletion> out;
    pool.drainCompletions(2, 8, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].seq, 2u);
}

TEST(FuPool, LowestInstanceFirstFeedsUtilizationStats)
{
    FuPool pool(FuConfig::sdspDefault()); // 4 ALUs
    // Two ops in one cycle use instances 0 and 1 only.
    pool.issue(FuClass::IntAlu, 1, 1);
    pool.issue(FuClass::IntAlu, 2, 1);
    EXPECT_EQ(pool.busyCycles(FuClass::IntAlu, 0), 1u);
    EXPECT_EQ(pool.busyCycles(FuClass::IntAlu, 1), 1u);
    EXPECT_EQ(pool.busyCycles(FuClass::IntAlu, 2), 0u);
    EXPECT_EQ(pool.busyCycles(FuClass::IntAlu, 3), 0u);
}

TEST(FuPool, IterativeUnitBusyCountsFullOccupancy)
{
    FuConfig cfg = FuConfig::sdspDefault();
    FuPool pool(cfg);
    pool.issue(FuClass::FpDiv, 1, 1);
    EXPECT_EQ(pool.busyCycles(FuClass::FpDiv, 0),
              cfg.latencyOf(FuClass::FpDiv));
}

TEST(FuPool, TotalInstances)
{
    EXPECT_EQ(FuPool(FuConfig::sdspDefault()).totalInstances(), 12u);
    EXPECT_EQ(FuPool(FuConfig::sdspEnhanced()).totalInstances(), 21u);
}

TEST(FuPool, StatsReport)
{
    FuPool pool(FuConfig::sdspDefault());
    pool.issue(FuClass::IntAlu, 1, 1);
    StatsRegistry registry;
    pool.reportStats(registry, "fu", 10);
    EXPECT_DOUBLE_EQ(registry.get("fu.IntAlu[0].busyFraction"), 0.1);
    EXPECT_DOUBLE_EQ(registry.get("fu.IntAlu[1].busyFraction"), 0.0);
}

TEST(FuPool, IssueWithoutFreeInstancePanics)
{
    FuPool pool(FuConfig::sdspDefault());
    pool.issue(FuClass::IntDiv, 1, 1);
    EXPECT_DEATH(pool.issue(FuClass::IntDiv, 2, 1), "free instance");
}

TEST(FuConfig, PaperTableOneValues)
{
    FuConfig def = FuConfig::sdspDefault();
    EXPECT_EQ(def.countOf(FuClass::IntAlu), 4u);
    EXPECT_EQ(def.countOf(FuClass::Load), 1u);
    EXPECT_EQ(def.countOf(FuClass::FpMul), 1u);
    EXPECT_EQ(def.latencyOf(FuClass::IntAlu), 1u);
    EXPECT_EQ(def.latencyOf(FuClass::Load), 2u);
    EXPECT_FALSE(def.pipelinedOf(FuClass::IntDiv));
    EXPECT_TRUE(def.pipelinedOf(FuClass::FpMul));

    FuConfig enh = FuConfig::sdspEnhanced();
    EXPECT_EQ(enh.countOf(FuClass::IntAlu), 6u);
    EXPECT_EQ(enh.countOf(FuClass::Load), 2u);
    // Latencies identical between configurations.
    for (unsigned i = 0; i < kNumFuClasses; ++i)
        EXPECT_EQ(def.latency[i], enh.latency[i]);
}

} // namespace
} // namespace sdsp

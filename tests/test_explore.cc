/**
 * @file
 * Tests for the design-space lattice explorer: lattice enumeration
 * (size, unique names, exactly one Exact point), the additive cost
 * model, confidence-class propagation into the projections, the
 * Pareto-frontier invariants (no dominated point, no pessimistic
 * bound, determinism across job counts), frontier validation against
 * real re-simulations, the register-budget finalize fix at 8
 * threads, and the sdsp-explore CLI.
 */

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "explore/explore.hh"
#include "explore/lattice.hh"
#include "harness/runner.hh"
#include "tools/explore_cli.hh"
#include "workloads/workload.hh"

namespace sdsp
{
namespace
{

MachineConfig
baseConfig(unsigned threads = 4)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.finalize();
    return cfg;
}

/** Record LL1 fresh at a small scale (deterministic simulator, so
 *  every call yields identical graphs). */
std::vector<ExploreRecording>
ll1Recordings()
{
    std::vector<ExploreRecording> recordings;
    recordings.push_back(
        recordBaseline(workloadByName("LL1"), baseConfig(), 10));
    EXPECT_TRUE(recordings[0].error.empty())
        << recordings[0].error;
    return recordings;
}

// ---- Lattice enumeration ----

TEST(Lattice, FullLatticeIsLargeWithUniqueNames)
{
    MachineConfig base = baseConfig();
    std::vector<LatticePoint> points =
        buildLattice(LatticeAxes::full(), base);
    EXPECT_EQ(points.size(), LatticeAxes::full().pointCount());
    EXPECT_GE(points.size(), 2000u);

    std::set<std::string> names;
    std::size_t exact = 0;
    for (const LatticePoint &point : points) {
        names.insert(point.name);
        EXPECT_GT(point.cost, 0.0) << point.name;
        if (point.confidence == Confidence::Exact)
            ++exact;
    }
    EXPECT_EQ(names.size(), points.size());
    // The axes include every baseline value, so exactly one point is
    // the baseline itself.
    EXPECT_EQ(exact, 1u);
}

TEST(Lattice, ReducedLatticeMatchesAdvertisedSize)
{
    EXPECT_EQ(LatticeAxes::reduced().pointCount(), 24u);
}

TEST(Lattice, OverrideAxisReplacesOrAppends)
{
    LatticeAxes axes = LatticeAxes::reduced();
    std::size_t before = axes.axes.size();
    axes.overrideAxis({"suEntries", {32, 64}});
    EXPECT_EQ(axes.axes.size(), before);
    axes.overrideAxis({"fuLat.Load", {1, 2}});
    EXPECT_EQ(axes.axes.size(), before + 1);
    EXPECT_EQ(axes.pointCount(), 2u * 2 * 2 * 2 * 2);
}

TEST(Lattice, CostModelIsMonotoneInCapacity)
{
    MachineConfig base = baseConfig();
    auto costOf = [&](const std::string &spec) {
        WhatIf what_if;
        std::string clause, error;
        std::istringstream clauses(spec);
        while (std::getline(clauses, clause, ','))
            EXPECT_TRUE(what_if.applyKeyValue(clause, &error))
                << error;
        return latticeCost(what_if, base);
    };
    EXPECT_LT(costOf("issueWidth=8"), costOf("issueWidth=16"));
    EXPECT_LT(costOf("suEntries=32"), costOf("suEntries=64"));
    EXPECT_LT(costOf("issueWidth=8"),
              costOf("issueWidth=8,perfectDCache=1"));
    // A faster functional unit costs more, a slower one less.
    EXPECT_LT(costOf("fuLat.Load=4"), costOf("fuLat.Load=2"));
    EXPECT_LT(costOf("fuLat.Load=2"), costOf("fuLat.Load=1"));
}

// ---- Confidence propagation ----

TEST(Lattice, ClassifiesDecreasesAsPessimistic)
{
    MachineConfig base = baseConfig(); // width 8, su 32
    std::vector<LatticePoint> points =
        buildLattice(LatticeAxes::reduced(), base);
    for (const LatticePoint &point : points) {
        const WhatIf &w = point.whatIf;
        bool decrease =
            (w.suEntries && w.suEntries < base.suEntries) ||
            (w.issueWidth && w.issueWidth < base.issueWidth);
        if (decrease) {
            EXPECT_EQ(point.confidence,
                      Confidence::PessimisticBound)
                << point.name;
        } else {
            EXPECT_NE(point.confidence,
                      Confidence::PessimisticBound)
                << point.name;
        }
    }
}

TEST(Explore, ProjectionMergesWorstConfidence)
{
    std::vector<ExploreRecording> recordings = ll1Recordings();
    MachineConfig base = baseConfig();
    std::vector<LatticePoint> points =
        buildLattice(LatticeAxes::reduced(), base);
    projectLattice(points, recordings, 1);

    for (const LatticePoint &point : points) {
        ASSERT_EQ(point.projected.size(), 1u) << point.name;
        EXPECT_GT(point.projectedTotal, 0u) << point.name;
        // The merged projection confidence can never be stronger
        // than the static classification.
        EXPECT_GE(static_cast<unsigned>(point.confidence),
                  static_cast<unsigned>(
                      classifyWhatIf(point.whatIf, base)))
            << point.name;
        // Capacity increases stay optimistic bounds against the
        // RECORDED baseline: projected <= measured (the theorem the
        // frontier trusts).
        if (point.whatIf.isPureCapacityIncrease(base)) {
            EXPECT_LE(point.projectedTotal,
                      recordings[0].measured)
                << point.name;
        }
    }
}

// ---- Pareto frontier ----

TEST(Explore, FrontierInvariants)
{
    std::vector<ExploreRecording> recordings = ll1Recordings();
    MachineConfig base = baseConfig();
    std::vector<LatticePoint> points =
        buildLattice(LatticeAxes::reduced(), base);
    projectLattice(points, recordings, 2);

    std::vector<std::size_t> frontier = paretoFrontier(points);
    ASSERT_FALSE(frontier.empty());

    // Sorted by cost, strictly improving cycles, never pessimistic.
    for (std::size_t f = 0; f < frontier.size(); ++f) {
        const LatticePoint &point = points[frontier[f]];
        EXPECT_NE(point.confidence, Confidence::PessimisticBound)
            << point.name;
        if (f) {
            const LatticePoint &prev = points[frontier[f - 1]];
            EXPECT_GE(point.cost, prev.cost);
            EXPECT_LT(point.projectedTotal, prev.projectedTotal);
        }
    }

    // No frontier point is dominated by ANY eligible point.
    for (std::size_t idx : frontier) {
        const LatticePoint &point = points[idx];
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (j == idx ||
                points[j].confidence == Confidence::PessimisticBound)
                continue;
            bool dominates =
                points[j].cost <= point.cost &&
                points[j].projectedTotal < point.projectedTotal;
            EXPECT_FALSE(dominates)
                << points[j].name << " dominates " << point.name;
        }
    }
}

TEST(Explore, FrontierIsDeterministicAcrossJobCounts)
{
    std::vector<ExploreRecording> recordings = ll1Recordings();
    MachineConfig base = baseConfig();

    auto frontierWith = [&](unsigned jobs) {
        std::vector<LatticePoint> points =
            buildLattice(LatticeAxes::reduced(), base);
        projectLattice(points, recordings, jobs);
        std::vector<std::string> names;
        for (std::size_t idx : paretoFrontier(points))
            names.push_back(points[idx].name);
        return names;
    };
    EXPECT_EQ(frontierWith(1), frontierWith(4));
}

// ---- Frontier validation (real re-simulations) ----

TEST(Explore, ValidateFrontierEndToEnd)
{
    MachineConfig base = baseConfig();
    const unsigned scale = 10;
    std::vector<ExploreRecording> recordings;
    for (const char *name : {"LL1", "LL5", "Sieve"}) {
        recordings.push_back(
            recordBaseline(workloadByName(name), base, scale));
        ASSERT_TRUE(recordings.back().error.empty())
            << recordings.back().error;
    }

    std::vector<LatticePoint> points =
        buildLattice(LatticeAxes::reduced(), base);
    projectLattice(points, recordings, 2);
    std::vector<std::size_t> frontier = paretoFrontier(points);
    ASSERT_FALSE(frontier.empty());

    std::vector<FrontierValidation> validations = validateFrontier(
        points, frontier, recordings, base, scale, 2);
    ASSERT_EQ(validations.size(), frontier.size());

    ExploreReport report;
    report.base = base;
    report.scale = scale;
    report.tolerancePercent = exploreTolerancePercent(scale);
    report.recordings = &recordings;
    report.points = &points;
    report.frontier = &frontier;
    report.validations = &validations;
    const ExploreSummary summary = summarize(report);

    EXPECT_EQ(summary.latticePoints, points.size());
    EXPECT_EQ(summary.validated, frontier.size());
    EXPECT_EQ(summary.resimFailures, 0u);
    EXPECT_EQ(summary.optimisticViolations, 0u);
    EXPECT_LE(summary.maxAbsErrorPercent, report.tolerancePercent);
    for (const FrontierValidation &validation : validations) {
        EXPECT_TRUE(validation.allOk);
        EXPECT_EQ(validation.resimulated.size(), recordings.size());
        if (validation.soundnessGated) {
            EXPECT_LE(points[validation.point].projectedTotal,
                      validation.resimTotal)
                << points[validation.point].name;
        }
    }

    // The baseline point re-simulates bit-identically.
    bool sawExact = false;
    for (const FrontierValidation &validation : validations) {
        if (points[validation.point].confidence != Confidence::Exact)
            continue;
        sawExact = true;
        EXPECT_EQ(points[validation.point].projectedTotal,
                  validation.resimTotal);
        EXPECT_EQ(validation.errorPercent, 0.0);
    }
    EXPECT_TRUE(sawExact);

    // The artifact carries the gate fields.
    std::string json = exploreJson(report);
    EXPECT_NE(json.find("\"schema\":\"sdsp-explore-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"optimisticViolations\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tolerancePercent\""), std::string::npos);
    EXPECT_NE(json.find("\"confidence\""), std::string::npos);
}

TEST(Explore, ApplyWhatIfMapsEveryKnob)
{
    MachineConfig base = baseConfig();
    WhatIf what_if;
    std::string error;
    for (const char *clause :
         {"issueWidth=16", "suEntries=65", "bypassing=0",
          "fuLat.Load=0", "perfectDCache=1",
          "infiniteStoreBuffer=1"})
        ASSERT_TRUE(what_if.applyKeyValue(clause, &error)) << error;

    MachineConfig cfg = applyWhatIf(what_if, base);
    EXPECT_EQ(cfg.issueWidth, 16u);
    // SU entries round down to whole blocks, like the projection.
    EXPECT_EQ(cfg.suEntries, 65u / base.blockSize * base.blockSize);
    EXPECT_FALSE(cfg.bypassing);
    // Latencies clamp at one real cycle.
    EXPECT_EQ(cfg.fu.latency[static_cast<unsigned>(FuClass::Load)],
              1u);
    EXPECT_EQ(cfg.storeBufferEntries, 4096u);
    EXPECT_EQ(cfg.dcache.missPenalty, 0u);
}

// ---- The register-budget finalize fix ----

TEST(Config, FinalizeScalesRegistersWithThreads)
{
    MachineConfig cfg;
    cfg.numThreads = 8;
    // Before the fix an 8-thread machine silently partitioned the
    // default 128 registers into 16 per thread, breaking programs
    // that address r16+.
    cfg.finalize();
    EXPECT_EQ(cfg.numRegisters, 256u);
    EXPECT_EQ(cfg.regsPerThread(), 32u);

    // Never shrinks an explicit larger budget.
    MachineConfig big;
    big.numThreads = 2;
    big.numRegisters = 512;
    big.finalize();
    EXPECT_EQ(big.numRegisters, 512u);
}

TEST(Config, EightThreadWorkloadRunsAfterFinalize)
{
    MachineConfig cfg = baseConfig(8);
    EXPECT_EQ(cfg.regsPerThread(), 32u);
    RunResult run = runWorkload(workloadByName("LL1"), cfg, 10);
    EXPECT_TRUE(run.finished);
    EXPECT_TRUE(run.verified) << run.verifyMessage;
}

// ---- The sdsp-explore CLI ----

TEST(ExploreCli, ParsesAndRejects)
{
    ExploreCliOptions ok = parseExploreCliOptions(
        {"--workloads", "LL1,LL5", "-t", "2", "--scale", "10",
         "--reduced", "--no-resim", "--axis", "suEntries=32,64"});
    ASSERT_TRUE(ok.ok) << ok.error;
    EXPECT_EQ(ok.workloads,
              (std::vector<std::string>{"LL1", "LL5"}));
    EXPECT_EQ(ok.threads, 2u);
    EXPECT_TRUE(ok.reduced);
    EXPECT_TRUE(ok.noResim);

    EXPECT_FALSE(parseExploreCliOptions({"--bogus"}).ok);
    EXPECT_FALSE(parseExploreCliOptions({"--axis", "suEntries"}).ok);
    EXPECT_FALSE(
        parseExploreCliOptions({"--axis", "noSuchKey=1,2"}).ok);
    // More than 12 recordings is refused up front.
    std::vector<std::string> many =
        {"--workloads",
         "A1,A2,A3,A4,A5,A6,A7,A8,A9,A10,A11,A12,A13"};
    EXPECT_FALSE(parseExploreCliOptions(many).ok);
}

TEST(ExploreCli, ReducedRunProjectsAndReports)
{
    ExploreCliOptions options = parseExploreCliOptions(
        {"--workloads", "LL1", "--scale", "10", "--reduced",
         "--no-resim", "--jobs", "2"});
    ASSERT_TRUE(options.ok) << options.error;
    std::ostringstream out;
    EXPECT_EQ(runExploreCli(options, out), 0);
    EXPECT_NE(out.str().find("frontier"), std::string::npos);
    EXPECT_NE(out.str().find("optimistic-bound"),
              std::string::npos);
}

TEST(ExploreCli, UnknownWorkloadFailsCleanly)
{
    ExploreCliOptions options = parseExploreCliOptions(
        {"--workloads", "NoSuchBench", "--reduced", "--no-resim"});
    ASSERT_TRUE(options.ok);
    std::ostringstream out;
    EXPECT_EQ(runExploreCli(options, out), 1);
    EXPECT_NE(out.str().find("NoSuchBench"), std::string::npos);
}

} // namespace
} // namespace sdsp

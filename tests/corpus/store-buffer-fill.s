; Minimized fuzz repro (sdsp-fuzz --seed 58 --count 1 --shape all,
; shape "memory", minimized 117 -> 13 instructions).
;
; Eight threads each issue a burst of stores. Before the fix, the
; issue stage reserved only one store-buffer slot for the globally
; oldest unbuffered store, so an SU block holding several stores
; could wedge with one store buffered and the rest locked out of a
; full buffer; the block never completed, never committed, and the
; buffer never drained: a pipeline deadlock (sim-timeout) on
; threads=8 fetch=Adaptive su=32 sb=8.

.space scratch 512

    tid r1
    slli r1, r1, 9
    tid r7
    ldi r8, -142
    tid r10
    ld r9, 368(r1)
    rem r11, r9, r7
    st r11, 232(r1)
    st r11, 368(r1)
    st r8, 416(r1)
    st r9, 424(r1)
    st r10, 432(r1)
    halt

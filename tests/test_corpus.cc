/**
 * @file
 * Corpus regression: every minimized fuzz repro checked into
 * tests/corpus/ must pass the full differential checker on the
 * machine shapes that historically broke. A failure here means a
 * previously fixed simulator bug has come back.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "fuzz/differential.hh"

#ifndef SDSP_CORPUS_DIR
#error "SDSP_CORPUS_DIR must point at tests/corpus"
#endif

namespace sdsp
{
namespace
{

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(SDSP_CORPUS_DIR)) {
        if (entry.path().extension() == ".s")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream file(path);
    EXPECT_TRUE(file.good()) << path;
    std::ostringstream text;
    text << file.rdbuf();
    return text.str();
}

/** The machine shapes the corpus is replayed on: the paper's default
 *  plus the dense-thread shapes that exposed past bugs. */
std::vector<MachineConfig>
corpusConfigs()
{
    std::vector<MachineConfig> configs;

    MachineConfig dflt;
    configs.push_back(dflt);

    MachineConfig dense;
    dense.numThreads = 8;
    dense.fetchPolicy = FetchPolicy::Adaptive;
    configs.push_back(dense);

    MachineConfig narrow;
    narrow.numThreads = 4;
    narrow.fetchPolicy = FetchPolicy::ConditionalSwitch;
    narrow.suEntries = 16;
    configs.push_back(narrow);

    return configs;
}

TEST(Corpus, NotEmpty)
{
    EXPECT_FALSE(corpusFiles().empty())
        << "no .s repros under " << SDSP_CORPUS_DIR;
}

TEST(Corpus, ReprosPassDifferentialEverywhere)
{
    for (const auto &path : corpusFiles()) {
        Program prog = assemble(slurp(path)).program;
        for (const MachineConfig &config : corpusConfigs()) {
            DiffResult result = runDifferential(prog, config);
            EXPECT_TRUE(result.ok)
                << path.filename() << " on " << config.toString()
                << ": " << result.kind << " (" << result.detail
                << ")";
        }
    }
}

} // namespace
} // namespace sdsp

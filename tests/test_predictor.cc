/**
 * @file
 * Unit tests for the shared BTB with 2-bit saturating counters.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "branch/predictor_bank.hh"

namespace sdsp
{
namespace
{

TEST(Predictor, MissOnColdLookup)
{
    BranchPredictor btb(64);
    EXPECT_FALSE(btb.predict(10).hit);
}

TEST(Predictor, LearnsTakenBranch)
{
    BranchPredictor btb(64);
    btb.update(10, true, 42);
    BranchPrediction p = btb.predict(10);
    EXPECT_TRUE(p.hit);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 42u);
}

TEST(Predictor, TwoBitHysteresis)
{
    BranchPredictor btb(64);
    // Train strongly taken.
    btb.update(10, true, 42);
    btb.update(10, true, 42);
    btb.update(10, true, 42); // counter saturates at 3
    // One not-taken must not flip the prediction...
    btb.update(10, false, 0);
    EXPECT_TRUE(btb.predict(10).taken);
    // ...but two must.
    btb.update(10, false, 0);
    EXPECT_FALSE(btb.predict(10).taken);
}

TEST(Predictor, NotTakenAllocationStartsWeak)
{
    BranchPredictor btb(64);
    btb.update(10, false, 0);
    BranchPrediction p = btb.predict(10);
    EXPECT_TRUE(p.hit);
    EXPECT_FALSE(p.taken);
    // A single taken flips the weak counter.
    btb.update(10, true, 7);
    EXPECT_TRUE(btb.predict(10).taken);
}

TEST(Predictor, TargetTracksLatestTaken)
{
    BranchPredictor btb(64);
    btb.update(10, true, 42);
    btb.update(10, true, 43); // e.g. an indirect jump moved
    EXPECT_EQ(btb.predict(10).target, 43u);
}

TEST(Predictor, AliasesDisplaceEachOther)
{
    BranchPredictor btb(16);
    btb.update(3, true, 100);
    btb.update(3 + 16, true, 200); // same BTB set
    EXPECT_FALSE(btb.predict(3).hit);
    BranchPrediction p = btb.predict(3 + 16);
    EXPECT_TRUE(p.hit);
    EXPECT_EQ(p.target, 200u);
}

TEST(Predictor, SharedAcrossThreadsByDesign)
{
    // The predictor is PC-indexed only; all threads of the
    // homogeneous workload share entries (paper section 4).
    BranchPredictor btb(64);
    btb.update(10, true, 42); // "thread 0"
    EXPECT_TRUE(btb.predict(10).taken); // "thread 1" benefits
}

TEST(Predictor, AccuracyStats)
{
    BranchPredictor btb(64);
    EXPECT_DOUBLE_EQ(btb.accuracy(), 1.0);
    btb.noteOutcome(false);
    btb.noteOutcome(false);
    btb.noteOutcome(true);
    btb.noteOutcome(false);
    EXPECT_EQ(btb.lookups(), 4u);
    EXPECT_EQ(btb.mispredictions(), 1u);
    EXPECT_DOUBLE_EQ(btb.accuracy(), 0.75);

    StatsRegistry registry;
    btb.reportStats(registry, "btb");
    EXPECT_DOUBLE_EQ(registry.get("btb.accuracy"), 0.75);
}

TEST(Predictor, NonPowerOfTwoSizePanics)
{
    EXPECT_DEATH(BranchPredictor{100}, "power of two");
}

TEST(PredictorBank, SharedBankTrainsAcrossThreads)
{
    PredictorBank bank(64, 1);
    bank.update(0, 10, true, 42);
    EXPECT_TRUE(bank.predict(3, 10).taken); // any thread benefits
    EXPECT_EQ(bank.banks(), 1u);
    EXPECT_EQ(bank.entriesPerBank(), 64u);
}

TEST(PredictorBank, PrivateBanksAreIsolated)
{
    PredictorBank bank(64, 4);
    bank.update(0, 10, true, 42);
    EXPECT_TRUE(bank.predict(0, 10).taken);
    EXPECT_FALSE(bank.predict(1, 10).hit); // no cross-training
    EXPECT_EQ(bank.entriesPerBank(), 16u);
}

TEST(PredictorBank, BudgetSplitRoundsDownToPowerOfTwo)
{
    PredictorBank bank(512, 3); // 512/3 = 170 -> 128
    EXPECT_EQ(bank.entriesPerBank(), 128u);
    EXPECT_EQ(bank.banks(), 3u);
}

TEST(PredictorBank, AggregateAccuracy)
{
    PredictorBank bank(64, 2);
    bank.noteOutcome(false);
    bank.noteOutcome(true);
    EXPECT_EQ(bank.lookups(), 2u);
    EXPECT_EQ(bank.mispredictions(), 1u);
    EXPECT_DOUBLE_EQ(bank.accuracy(), 0.5);

    StatsRegistry registry;
    bank.reportStats(registry, "btb");
    EXPECT_DOUBLE_EQ(registry.get("btb.banks"), 2.0);
    EXPECT_DOUBLE_EQ(registry.get("btb.accuracy"), 0.5);
}

} // namespace
} // namespace sdsp

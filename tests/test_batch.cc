/**
 * @file
 * Differential tests for the batched execution engine
 * (harness/batch.hh): a batch of machine variants run in one
 * interleaved pass over one shared decoded program must be
 * bit-identical — cycles, committed instructions, architectural
 * registers and memory, stall attribution — to running each variant
 * serially with its own freshly built program, for any slice size and
 * any batch composition.
 */

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "harness/batch.hh"
#include "harness/sweep.hh"
#include "workloads/workload.hh"

namespace sdsp
{
namespace
{

/** A deterministic pseudo-random slice of the paper's config space.
 *  All variants share @p threads (a batch requirement). */
std::vector<MachineConfig>
randomConfigSlice(unsigned threads, std::size_t count,
                  std::uint32_t seed)
{
    std::mt19937 rng(seed);
    auto pick = [&](auto &&...options) {
        const auto list = {options...};
        std::uniform_int_distribution<std::size_t> dist(
            0, list.size() - 1);
        return *(list.begin() +
                 static_cast<std::ptrdiff_t>(dist(rng)));
    };

    std::vector<MachineConfig> configs;
    configs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        MachineConfig cfg;
        cfg.numThreads = threads;
        cfg.fetchPolicy =
            pick(FetchPolicy::TrueRoundRobin,
                 FetchPolicy::MaskedRoundRobin,
                 FetchPolicy::ConditionalSwitch, FetchPolicy::Adaptive);
        cfg.suEntries = pick(16u, 32u, 64u);
        cfg.issueWidth = pick(4u, 8u);
        cfg.writebackWidth = pick(4u, 8u);
        cfg.commitPolicy = pick(CommitPolicy::FlexibleFourBlocks,
                                CommitPolicy::LowestBlockOnly);
        cfg.renameScheme = pick(RenameScheme::FullRenaming,
                                RenameScheme::Scoreboard1Bit);
        cfg.bypassing = pick(true, false);
        cfg.fu = pick(0, 1) ? FuConfig::sdspEnhanced()
                            : FuConfig::sdspDefault();
        cfg.storeBufferEntries = pick(4u, 8u, 16u);
        cfg.validate();
        configs.push_back(cfg);
    }
    return configs;
}

/** Serial reference: a fresh Processor over a fresh build. */
SimResult
runSerial(Processor &cpu, const MachineConfig &cfg)
{
    while (!cpu.done() && cpu.cycle() < cfg.maxCycles)
        cpu.step();
    cpu.finishTrace();
    return {cpu.done(), cpu.cycle(), cpu.committedInstructions()};
}

/**
 * Run @p configs over @p workload batched (at @p slice_cycles) and
 * serially, and assert every deterministic observable matches.
 */
void
expectBatchedMatchesSerial(const Workload &workload, unsigned threads,
                           unsigned scale,
                           const std::vector<MachineConfig> &configs,
                           std::uint64_t slice_cycles)
{
    BatchRunner batch(workload, configs, scale, RunLimits{},
                      slice_cycles);
    std::vector<LimitedRunResult> results = batch.run();
    ASSERT_EQ(results.size(), configs.size());

    WorkloadImage image = workload.build(threads, scale);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i) + ": " +
                     configs[i].toString());
        Processor serial(configs[i], image.program);
        runSerial(serial, configs[i]);
        Processor &lane = batch.processor(i);

        EXPECT_EQ(lane.cycle(), serial.cycle());
        EXPECT_EQ(lane.committedInstructions(),
                  serial.committedInstructions());
        EXPECT_EQ(lane.suStalls(), serial.suStalls());
        EXPECT_EQ(lane.flexibleCommits(), serial.flexibleCommits());
        for (unsigned t = 0; t < threads; ++t) {
            for (unsigned r = 0; r < kNumStallReasons; ++r) {
                EXPECT_EQ(
                    lane.stallCycles(static_cast<ThreadId>(t),
                                     static_cast<StallReason>(r)),
                    serial.stallCycles(static_cast<ThreadId>(t),
                                       static_cast<StallReason>(r)))
                    << "thread " << t << " stall reason " << r;
            }
        }
        for (unsigned t = 0; t < threads; ++t) {
            for (unsigned r = 0; r < configs[i].regsPerThread(); ++r) {
                EXPECT_EQ(lane.readReg(static_cast<ThreadId>(t),
                                       static_cast<RegIndex>(r)),
                          serial.readReg(static_cast<ThreadId>(t),
                                         static_cast<RegIndex>(r)))
                    << "thread " << t << " register r" << r;
            }
        }
        ASSERT_EQ(lane.memory().size(), serial.memory().size());
        for (std::uint32_t addr = 0; addr + 8 <= lane.memory().size();
             addr += 8) {
            ASSERT_EQ(lane.memory().read(addr),
                      serial.memory().read(addr))
                << "memory word at " << addr;
        }

        // The packaged result must agree with the reference run too.
        EXPECT_TRUE(results[i].result.finished);
        EXPECT_TRUE(results[i].result.verified)
            << results[i].result.verifyMessage;
        EXPECT_EQ(results[i].result.cycles, serial.cycle());
        EXPECT_EQ(results[i].result.committed,
                  serial.committedInstructions());
    }
}

TEST(Batch, RandomizedSliceMatchesSerialGroupI)
{
    const Workload &workload = *allWorkloads().front();
    expectBatchedMatchesSerial(
        workload, 4, /*scale=*/25,
        randomConfigSlice(4, 6, /*seed=*/0xb17c0de),
        BatchRunner::kDefaultSliceCycles);
}

TEST(Batch, RandomizedSliceMatchesSerialGroupII)
{
    const Workload *pick = nullptr;
    for (const Workload *workload : allWorkloads()) {
        if (workload->group() == BenchmarkGroup::GroupII) {
            pick = workload;
            break;
        }
    }
    ASSERT_NE(pick, nullptr);
    expectBatchedMatchesSerial(*pick, 6, /*scale=*/25,
                               randomConfigSlice(6, 4, /*seed=*/42),
                               BatchRunner::kDefaultSliceCycles);
}

TEST(Batch, SliceSizeDoesNotChangeResults)
{
    // Interleaving granularity is a pure scheduling choice; every
    // slice size must produce the same architectural results.
    const Workload &workload = *allWorkloads().front();
    std::vector<MachineConfig> configs =
        randomConfigSlice(4, 3, /*seed=*/7);
    for (std::uint64_t slice : {std::uint64_t{7}, std::uint64_t{512},
                                std::uint64_t{1} << 40}) {
        SCOPED_TRACE("slice " + std::to_string(slice));
        expectBatchedMatchesSerial(workload, 4, /*scale=*/10, configs,
                                   slice);
    }
}

TEST(Batch, SweepRunnerBatchedOutcomesMatchSerial)
{
    // The sweep-level integration: the same grid, batched and not,
    // must produce identical outcomes in identical order, and the
    // completion callback must still see every job exactly once.
    std::vector<const Workload *> workloads = {
        allWorkloads().front(), allWorkloads().back()};
    std::vector<MachineConfig> variants =
        randomConfigSlice(4, 3, /*seed=*/11);

    auto runGrid = [&](unsigned batch_size) {
        SweepOptions options;
        options.batchSize = batch_size;
        SweepRunner runner(/*jobs=*/1, options);
        for (const Workload *workload : workloads) {
            for (const MachineConfig &config : variants)
                runner.add(*workload, config, /*scale=*/10, "diff");
        }
        std::vector<std::size_t> seen;
        std::vector<JobOutcome> outcomes = runner.runAll(
            [&](std::size_t index, const JobOutcome &) {
                seen.push_back(index);
            });
        std::vector<std::size_t> sorted = seen;
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 0; i < sorted.size(); ++i)
            EXPECT_EQ(sorted[i], i);
        return outcomes;
    };

    std::vector<JobOutcome> serial = runGrid(0);
    std::vector<JobOutcome> batched = runGrid(4);
    ASSERT_EQ(serial.size(), batched.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        EXPECT_EQ(batched[i].status, serial[i].status);
        EXPECT_EQ(batched[i].result.benchmark,
                  serial[i].result.benchmark);
        EXPECT_EQ(batched[i].result.cycles, serial[i].result.cycles);
        EXPECT_EQ(batched[i].result.committed,
                  serial[i].result.committed);
        EXPECT_TRUE(batched[i].ok()) << batched[i].error;
    }
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Unit tests for the scheduling unit (combined reorder buffer +
 * instruction window): dispatch, operand lookup, wakeup/bypass
 * timing, selective squash, flexible commit selection and memory
 * disambiguation queries.
 */

#include <gtest/gtest.h>

#include "core/regfile.hh"
#include "core/su.hh"

namespace sdsp
{
namespace
{

SuEntry
makeEntry(Tag seq, ThreadId tid, Opcode op, RegIndex rd,
          EntryState state = EntryState::Waiting)
{
    SuEntry entry;
    entry.valid = true;
    entry.seq = seq;
    entry.tid = tid;
    entry.inst = Instruction::makeR(op, rd, 0, 0);
    entry.state = state;
    return entry;
}

SuBlock
makeBlock(ThreadId tid, std::vector<SuEntry> entries)
{
    SuBlock block;
    block.tid = tid;
    block.blockSeq = entries.front().seq;
    block.entries = std::move(entries);
    return block;
}

TEST(Su, CapacityAndOccupancy)
{
    SchedulingUnit su(2, 4);
    EXPECT_TRUE(su.hasSpace());
    EXPECT_TRUE(su.empty());
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1),
                              makeEntry(2, 0, Opcode::ADD, 2)}));
    EXPECT_EQ(su.occupancy(), 2u);
    su.dispatch(makeBlock(1, {makeEntry(3, 1, Opcode::ADD, 1)}));
    EXPECT_FALSE(su.hasSpace());
    EXPECT_DEATH(su.dispatch(makeBlock(0, {makeEntry(9, 0,
                                                     Opcode::ADD, 3)})),
                 "full");
}

TEST(Su, FindNewestWriterMatchesThreadAndRegister)
{
    SchedulingUnit su(4, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 5)}));
    su.dispatch(makeBlock(1, {makeEntry(2, 1, Opcode::ADD, 5)}));
    su.dispatch(makeBlock(0, {makeEntry(3, 0, Opcode::ADD, 5)}));

    const SuEntry *writer = su.findNewestWriter(0, 5);
    ASSERT_NE(writer, nullptr);
    EXPECT_EQ(writer->seq, 3u); // newest of thread 0, not thread 1's
    writer = su.findNewestWriter(1, 5);
    ASSERT_NE(writer, nullptr);
    EXPECT_EQ(writer->seq, 2u);
    EXPECT_EQ(su.findNewestWriter(0, 6), nullptr);
}

TEST(Su, FindNewestWriterIgnoresNonWriters)
{
    SchedulingUnit su(4, 4);
    SuEntry store = makeEntry(1, 0, Opcode::ADD, 5);
    store.inst = Instruction::makeB(Opcode::ST, 5, 5, 0);
    su.dispatch(makeBlock(0, {store}));
    EXPECT_EQ(su.findNewestWriter(0, 5), nullptr);
}

TEST(Su, BroadcastWakesMatchingOperands)
{
    SchedulingUnit su(4, 4);
    SuEntry consumer = makeEntry(2, 0, Opcode::ADD, 3);
    consumer.inst = Instruction::makeR(Opcode::ADD, 3, 1, 2);
    consumer.src1 = {false, 0, 7}; // waiting on tag 7
    consumer.src2 = {true, 5, kNoTag};
    su.dispatch(makeBlock(0, {consumer}));

    su.broadcast(7, 123, /*now=*/10, /*bypassing=*/true);
    SuEntry *entry = su.findBySeq(2);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->state, EntryState::Ready);
    EXPECT_EQ(entry->src1.value, 123u);
    EXPECT_EQ(entry->earliestIssue, 10u); // same-cycle with bypass
}

TEST(Su, BroadcastWithoutBypassDelaysIssue)
{
    SchedulingUnit su(4, 4);
    SuEntry consumer = makeEntry(2, 0, Opcode::ADD, 3);
    consumer.src1 = {false, 0, 7};
    su.dispatch(makeBlock(0, {consumer}));
    su.broadcast(7, 1, 10, /*bypassing=*/false);
    EXPECT_EQ(su.findBySeq(2)->earliestIssue, 11u);
}

TEST(Su, BroadcastLeavesPartiallyWaitingEntries)
{
    SchedulingUnit su(4, 4);
    SuEntry consumer = makeEntry(2, 0, Opcode::ADD, 3);
    consumer.src1 = {false, 0, 7};
    consumer.src2 = {false, 0, 8};
    su.dispatch(makeBlock(0, {consumer}));
    su.broadcast(7, 1, 10, true);
    EXPECT_EQ(su.findBySeq(2)->state, EntryState::Waiting);
    su.broadcast(8, 2, 11, true);
    EXPECT_EQ(su.findBySeq(2)->state, EntryState::Ready);
}

TEST(Su, SquashRemovesOnlyYoungerSameThread)
{
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1),
                              makeEntry(2, 0, Opcode::ADD, 2)}));
    su.dispatch(makeBlock(1, {makeEntry(3, 1, Opcode::ADD, 1)}));
    su.dispatch(makeBlock(0, {makeEntry(4, 0, Opcode::ADD, 3)}));

    std::vector<Tag> squashed;
    unsigned count = su.squashThread(0, /*after=*/1, &squashed);
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(squashed, (std::vector<Tag>{2, 4}));
    // Thread 1 untouched; thread 0's block 2 fully removed; entry 1
    // survives within its block.
    EXPECT_NE(su.findBySeq(1), nullptr);
    EXPECT_EQ(su.findBySeq(2), nullptr);
    EXPECT_NE(su.findBySeq(3), nullptr);
    EXPECT_EQ(su.findBySeq(4), nullptr);
    EXPECT_EQ(su.contents().size(), 2u);
}

TEST(Su, SquashThenBroadcastStaleTagDoesNotWakeTheDead)
{
    // Producer seq 2 (thread 0) feeds a same-thread consumer seq 3.
    // Both are squashed; a result for tag 2 already in flight at
    // squash time still arrives as a broadcast. It must find nobody:
    // no crash, no wakeup, no stale index entry.
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1),
                              makeEntry(2, 0, Opcode::ADD, 2)}));
    SuEntry consumer = makeEntry(3, 0, Opcode::ADD, 3);
    consumer.src1 = {false, 0, 2};
    su.dispatch(makeBlock(0, {consumer}));

    EXPECT_EQ(su.squashThread(0, /*after=*/1), 2u);
    EXPECT_EQ(su.findBySeq(2), nullptr);
    EXPECT_EQ(su.findBySeq(3), nullptr);

    su.broadcast(2, 42, /*now=*/5, /*bypassing=*/true);
    EXPECT_EQ(su.occupancy(), 1u);
    EXPECT_NE(su.findBySeq(1), nullptr);

    // The window and its indices stay usable: a fresh block can
    // dispatch, wake and commit normally.
    SuEntry fresh = makeEntry(4, 0, Opcode::ADD, 2);
    fresh.src1 = {false, 0, 1};
    su.dispatch(makeBlock(0, {fresh}));
    su.broadcast(1, 7, 6, true);
    ASSERT_NE(su.findBySeq(4), nullptr);
    EXPECT_EQ(su.findBySeq(4)->state, EntryState::Ready);
    EXPECT_EQ(su.findBySeq(4)->src1.value, 7u);
}

TEST(Su, SquashKeepsCrossThreadWaitersWakeable)
{
    // A consumer of another thread waiting on the squashed tag (only
    // possible by driving the SU directly) must still be woken by the
    // late broadcast, exactly as a scan over the window would.
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1),
                              makeEntry(2, 0, Opcode::ADD, 2)}));
    SuEntry other = makeEntry(3, 1, Opcode::ADD, 3);
    other.src1 = {false, 0, 2};
    su.dispatch(makeBlock(1, {other}));

    su.squashThread(0, /*after=*/1);
    su.broadcast(2, 99, /*now=*/5, /*bypassing=*/true);

    ASSERT_NE(su.findBySeq(3), nullptr);
    EXPECT_EQ(su.findBySeq(3)->state, EntryState::Ready);
    EXPECT_EQ(su.findBySeq(3)->src1.value, 99u);
}

TEST(Su, SquashPurgesWriterTable)
{
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 5)}));
    su.dispatch(makeBlock(0, {makeEntry(2, 0, Opcode::ADD, 5)}));
    su.squashThread(0, /*after=*/1);
    const SuEntry *writer = su.findNewestWriter(0, 5);
    ASSERT_NE(writer, nullptr);
    EXPECT_EQ(writer->seq, 1u); // not the squashed seq 2
}

TEST(Su, CommitSelectsCompleteBottomBlock)
{
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1,
                                        EntryState::Done)}));
    CommitSelection selection = su.selectCommit(4);
    EXPECT_TRUE(selection.found);
    EXPECT_EQ(selection.blockIndex, 0u);
}

TEST(Su, FlexibleCommitSkipsOtherThreadsIncompleteBlock)
{
    // Paper Figure 2: block 1 (thread 0) incomplete; block 2
    // (thread 1) complete -> thread 1 commits from the middle.
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1)}));
    su.dispatch(makeBlock(1, {makeEntry(2, 1, Opcode::ADD, 1,
                                        EntryState::Done)}));
    CommitSelection selection = su.selectCommit(4);
    EXPECT_TRUE(selection.found);
    EXPECT_EQ(selection.blockIndex, 1u);
}

TEST(Su, FlexibleCommitRespectsSameThreadOrder)
{
    // Both blocks thread 0; the younger complete block must NOT pass
    // the older incomplete one.
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1)}));
    su.dispatch(makeBlock(0, {makeEntry(2, 0, Opcode::ADD, 1,
                                        EntryState::Done)}));
    EXPECT_FALSE(su.selectCommit(4).found);
}

TEST(Su, FlexibleCommitChecksAllBlocksBelow)
{
    // Thread pattern A(incomplete) B(incomplete) B(complete): the
    // complete B block is blocked by the incomplete B block below.
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1)}));
    su.dispatch(makeBlock(1, {makeEntry(2, 1, Opcode::ADD, 1)}));
    su.dispatch(makeBlock(1, {makeEntry(3, 1, Opcode::ADD, 2,
                                        EntryState::Done)}));
    EXPECT_FALSE(su.selectCommit(4).found);
}

TEST(Su, CommitWindowLimitsLookahead)
{
    // Complete block sits above the window: LowestBlockOnly (window
    // 1) must not find it; window 4 must.
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1)}));
    su.dispatch(makeBlock(1, {makeEntry(2, 1, Opcode::ADD, 1,
                                        EntryState::Done)}));
    EXPECT_FALSE(su.selectCommit(1).found);
    EXPECT_TRUE(su.selectCommit(4).found);
}

TEST(Su, FlexibleCommitWindowIsFourBlocks)
{
    // A complete foreign block in slot 4 (fifth from bottom) is
    // beyond the paper's four-block commit window.
    SchedulingUnit su(8, 4);
    for (Tag seq = 1; seq <= 4; ++seq) {
        su.dispatch(makeBlock(0, {makeEntry(seq, 0, Opcode::ADD, 1)}));
    }
    su.dispatch(makeBlock(1, {makeEntry(9, 1, Opcode::ADD, 1,
                                        EntryState::Done)}));
    EXPECT_FALSE(su.selectCommit(4).found);
    EXPECT_TRUE(su.selectCommit(5).found);
}

TEST(Su, RemoveBlockCompacts)
{
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1)}));
    su.dispatch(makeBlock(1, {makeEntry(2, 1, Opcode::ADD, 1)}));
    SuBlock removed = su.removeBlock(0);
    EXPECT_EQ(removed.tid, 0u);
    EXPECT_EQ(su.contents().size(), 1u);
    EXPECT_EQ(su.contents().front().tid, 1u);
}

TEST(Su, OlderUnresolvedStoreQuery)
{
    SchedulingUnit su(8, 4);
    SuEntry store = makeEntry(1, 0, Opcode::ADD, 0);
    store.inst = Instruction::makeB(Opcode::ST, 1, 2, 0);
    su.dispatch(makeBlock(0, {store}));

    EXPECT_TRUE(su.hasOlderUnresolvedStore(0, 5));
    EXPECT_FALSE(su.hasOlderUnresolvedStore(1, 5)); // other thread
    EXPECT_FALSE(su.hasOlderUnresolvedStore(0, 1)); // not older

    su.markStoreBuffered(*su.findBySeq(1));
    EXPECT_FALSE(su.hasOlderUnresolvedStore(0, 5)); // now resolved
}

TEST(Su, OlderUnbufferedStoreIsThreadBlind)
{
    SchedulingUnit su(8, 4);
    SuEntry store = makeEntry(3, 1, Opcode::ADD, 0);
    store.inst = Instruction::makeB(Opcode::ST, 1, 2, 0);
    su.dispatch(makeBlock(1, {store}));

    // Visible across threads (it gates the shared store buffer).
    EXPECT_TRUE(su.hasOlderUnbufferedStore(7));
    EXPECT_FALSE(su.hasOlderUnbufferedStore(3)); // not strictly older
    su.markStoreBuffered(*su.findBySeq(3));
    EXPECT_FALSE(su.hasOlderUnbufferedStore(7));
}

TEST(Su, CountUnbufferedStoresThroughOwnBlock)
{
    // Counts unbuffered stores in blocks below the target and in the
    // target's own block (both sides), excluding the target — the
    // store-buffer reservation that keeps the FIFO drain
    // deadlock-free for blocks holding several stores.
    auto makeStore = [](Tag seq, ThreadId tid) {
        SuEntry entry = makeEntry(seq, tid, Opcode::ADD, 0);
        entry.inst = Instruction::makeB(Opcode::ST, 1, 2, 0);
        return entry;
    };

    SchedulingUnit su(16, 4);
    su.dispatch(makeBlock(0, {makeStore(1, 0), makeStore(2, 0)}));
    su.dispatch(makeBlock(1, {makeStore(3, 1), makeStore(4, 1),
                              makeEntry(5, 1, Opcode::ADD, 1)}));

    // Oldest store: only its block-mate counts.
    EXPECT_EQ(su.countUnbufferedStoresThrough(*su.findBySeq(1)), 1u);
    EXPECT_EQ(su.countUnbufferedStoresThrough(*su.findBySeq(2)), 1u);
    // Upper block: both lower stores plus the block-mate.
    EXPECT_EQ(su.countUnbufferedStoresThrough(*su.findBySeq(3)), 3u);
    EXPECT_EQ(su.countUnbufferedStoresThrough(*su.findBySeq(4)), 3u);

    // Buffered stores stop counting.
    su.markStoreBuffered(*su.findBySeq(1));
    EXPECT_EQ(su.countUnbufferedStoresThrough(*su.findBySeq(2)), 0u);
    EXPECT_EQ(su.countUnbufferedStoresThrough(*su.findBySeq(4)), 2u);
}

TEST(Su, OldestFirstIterationOrder)
{
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1),
                              makeEntry(2, 0, Opcode::ADD, 2)}));
    su.dispatch(makeBlock(1, {makeEntry(3, 1, Opcode::ADD, 1)}));
    std::vector<Tag> seen;
    su.forEachOldestFirst([&](SuEntry &entry) {
        seen.push_back(entry.seq);
        return true;
    });
    EXPECT_EQ(seen, (std::vector<Tag>{1, 2, 3}));
}

TEST(Su, IterationStopsOnFalse)
{
    SchedulingUnit su(8, 4);
    su.dispatch(makeBlock(0, {makeEntry(1, 0, Opcode::ADD, 1),
                              makeEntry(2, 0, Opcode::ADD, 2)}));
    unsigned visits = 0;
    su.forEachOldestFirst([&](SuEntry &) {
        ++visits;
        return false;
    });
    EXPECT_EQ(visits, 1u);
}

TEST(RegFile, PartitionMapping)
{
    RegisterFile regs(128, 4);
    EXPECT_EQ(regs.registersPerThread(), 32u);
    regs.write(0, 5, 100);
    regs.write(1, 5, 200);
    EXPECT_EQ(regs.read(0, 5), 100u);
    EXPECT_EQ(regs.read(1, 5), 200u);
    EXPECT_EQ(regs.physIndex(2, 0), 64u);
}

TEST(RegFile, FloorPartitionWithRemainder)
{
    RegisterFile regs(128, 6);
    EXPECT_EQ(regs.registersPerThread(), 21u);
    EXPECT_EQ(regs.physIndex(5, 20), 5u * 21 + 20);
}

TEST(RegFile, OutOfPartitionPanics)
{
    RegisterFile regs(128, 4);
    EXPECT_DEATH(regs.read(0, 32), "partition");
}

TEST(RegFile, ResetZeroes)
{
    RegisterFile regs(128, 2);
    regs.write(1, 3, 7);
    regs.reset();
    EXPECT_EQ(regs.read(1, 3), 0u);
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Tests for the parallel sweep engine: parallel/serial equivalence,
 * submission-order results, exception propagation, worker-count
 * resolution, and the artifact serializers the sweep feeds.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "harness/artifacts.hh"
#include "harness/sweep.hh"

namespace sdsp
{
namespace
{

std::vector<SweepJob>
smallGrid()
{
    std::vector<SweepJob> grid;
    for (const char *name : {"LL1", "LL5", "Matrix", "Sieve"}) {
        for (unsigned threads : {1u, 4u}) {
            MachineConfig cfg;
            cfg.numThreads = threads;
            grid.push_back(
                {&workloadByName(name), cfg, /*scale=*/10, name});
        }
    }
    return grid;
}

TEST(Sweep, ParallelMatchesSerial)
{
    std::vector<RunResult> serial = runSweep(smallGrid(), 1);
    std::vector<RunResult> parallel = runSweep(smallGrid(), 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].benchmark);
        EXPECT_TRUE(serial[i].verified) << serial[i].verifyMessage;
        EXPECT_TRUE(parallel[i].verified) << parallel[i].verifyMessage;
        // Bit-identical measurements, not just close ones: each grid
        // point owns its Processor and all randomness is
        // instance-seeded.
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles);
        EXPECT_EQ(serial[i].committed, parallel[i].committed);
        EXPECT_EQ(serial[i].suStalls, parallel[i].suStalls);
        EXPECT_EQ(serial[i].flexCommits, parallel[i].flexCommits);
        ASSERT_EQ(serial[i].stats.entries().size(),
                  parallel[i].stats.entries().size());
        for (std::size_t s = 0; s < serial[i].stats.entries().size();
             ++s) {
            EXPECT_EQ(serial[i].stats.entries()[s].name,
                      parallel[i].stats.entries()[s].name);
            EXPECT_EQ(serial[i].stats.entries()[s].value,
                      parallel[i].stats.entries()[s].value);
        }
    }
}

TEST(Sweep, ResultsFollowSubmissionOrder)
{
    std::vector<SweepJob> grid = smallGrid();
    std::vector<RunResult> results = runSweep(grid, 3);
    ASSERT_EQ(results.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(results[i].benchmark, grid[i].workload->name());
        EXPECT_EQ(results[i].config.numThreads,
                  grid[i].config.numThreads);
    }
}

TEST(Sweep, RunClearsTheQueue)
{
    SweepRunner runner(2);
    EXPECT_EQ(runner.add(workloadByName("Sieve"), MachineConfig{}, 10),
              0u);
    EXPECT_EQ(runner.add(workloadByName("LL1"), MachineConfig{}, 10),
              1u);
    EXPECT_EQ(runner.pending(), 2u);
    EXPECT_EQ(runner.run().size(), 2u);
    EXPECT_EQ(runner.pending(), 0u);
    EXPECT_TRUE(runner.run().empty());
}

/** A workload whose build fails, to exercise error paths. */
class ThrowingWorkload : public Workload
{
  public:
    std::string name() const override { return "Throwing"; }
    BenchmarkGroup
    group() const override
    {
        return BenchmarkGroup::GroupII;
    }
    WorkloadImage
    build(unsigned, unsigned) const override
    {
        throw std::runtime_error("deliberate grid-point failure");
    }
};

TEST(Sweep, ExceptionFromGridPointPropagates)
{
    for (unsigned jobs : {1u, 4u}) {
        ThrowingWorkload bad;
        SweepRunner runner(jobs);
        runner.add(workloadByName("Sieve"), MachineConfig{}, 10);
        runner.add(bad, MachineConfig{}, 10);
        runner.add(workloadByName("LL1"), MachineConfig{}, 10);
        EXPECT_THROW(
            {
                try {
                    runner.run();
                } catch (const std::runtime_error &err) {
                    EXPECT_STREQ(err.what(),
                                 "deliberate grid-point failure");
                    throw;
                }
            },
            std::runtime_error)
            << "jobs=" << jobs;
    }
}

/** A second failing workload, distinguishable from the first. */
class OtherThrowingWorkload : public Workload
{
  public:
    std::string name() const override { return "OtherThrowing"; }
    BenchmarkGroup
    group() const override
    {
        return BenchmarkGroup::GroupII;
    }
    WorkloadImage
    build(unsigned, unsigned) const override
    {
        throw std::runtime_error("second deliberate failure");
    }
};

// Regression test: the engine once rethrew only the first exception,
// so a grid with two bad points reported one and silently dropped
// the other (and every result after it). Both failures must be
// observable, and the good points must still run.
TEST(Sweep, TwoFailingJobsAreBothObservable)
{
    for (unsigned jobs : {1u, 4u}) {
        ThrowingWorkload bad;
        OtherThrowingWorkload worse;
        SweepRunner runner(jobs, SweepOptions{});
        runner.add(workloadByName("Sieve"), MachineConfig{}, 10);
        runner.add(bad, MachineConfig{}, 10);
        runner.add(workloadByName("LL1"), MachineConfig{}, 10);
        runner.add(worse, MachineConfig{}, 10);

        std::vector<JobOutcome> outcomes = runner.runAll();
        ASSERT_EQ(outcomes.size(), 4u) << "jobs=" << jobs;

        EXPECT_EQ(outcomes[0].status, JobStatus::Ok);
        EXPECT_TRUE(outcomes[0].result.verified);

        EXPECT_EQ(outcomes[1].status, JobStatus::Failed);
        EXPECT_EQ(outcomes[1].error, "deliberate grid-point failure");
        EXPECT_EQ(outcomes[1].result.benchmark, "Throwing")
            << "a thrown job still reports its identity";
        EXPECT_EQ(outcomes[1].attempts, 1u);
        EXPECT_TRUE(outcomes[1].exception != nullptr);

        EXPECT_EQ(outcomes[2].status, JobStatus::Ok)
            << "a failure must not take down later points";

        EXPECT_EQ(outcomes[3].status, JobStatus::Failed);
        EXPECT_EQ(outcomes[3].error, "second deliberate failure");
    }
}

TEST(Sweep, RetryRecoversTransientThrow)
{
    SweepOptions options;
    options.retries = 1;
    options.retryBackoffSeconds = 0.0;
    options.faults = FaultPlan::fromSpec("Sieve=throw*1");

    SweepRunner runner(1, options);
    runner.add(workloadByName("Sieve"), MachineConfig{}, 10, "fig05");
    std::vector<JobOutcome> outcomes = runner.runAll();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, JobStatus::Ok);
    EXPECT_EQ(outcomes[0].attempts, 2u)
        << "first attempt hits the injected fault, the retry runs";
    EXPECT_TRUE(outcomes[0].result.verified);
    EXPECT_TRUE(outcomes[0].error.empty());
}

TEST(Sweep, RetriesExhaustOnPersistentThrow)
{
    SweepOptions options;
    options.retries = 2;
    options.retryBackoffSeconds = 0.0;
    options.faults = FaultPlan::fromSpec("Sieve=throw");

    SweepRunner runner(1, options);
    runner.add(workloadByName("Sieve"), MachineConfig{}, 10, "fig05");
    std::vector<JobOutcome> outcomes = runner.runAll();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, JobStatus::Failed);
    EXPECT_EQ(outcomes[0].attempts, 3u) << "1 try + 2 retries";
}

TEST(Sweep, CycleBudgetClassifiesAsTimedOut)
{
    SweepOptions options;
    options.maxCycles = 50; // far below any real benchmark
    SweepRunner runner(1, options);
    runner.add(workloadByName("Sieve"), MachineConfig{}, 10, "fig05");
    std::vector<JobOutcome> outcomes = runner.runAll();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, JobStatus::TimedOut);
    EXPECT_NE(outcomes[0].error.find("simulated-cycle budget"),
              std::string::npos)
        << outcomes[0].error;
    EXPECT_FALSE(outcomes[0].result.finished);
    EXPECT_EQ(outcomes[0].exception, nullptr)
        << "a timeout is a classified outcome, not an exception";
}

TEST(Sweep, WallClockBudgetClassifiesAsTimedOut)
{
    SweepOptions options;
    options.timeoutSeconds = 1e-9; // already expired at the first
                                   // slice boundary
    SweepRunner runner(1, options);
    MachineConfig cfg; // full-scale LL1 runs far past one slice
    runner.add(workloadByName("LL1"), cfg, 100, "fig05");
    std::vector<JobOutcome> outcomes = runner.runAll();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, JobStatus::TimedOut);
    EXPECT_NE(outcomes[0].error.find("wall-clock budget"),
              std::string::npos)
        << outcomes[0].error;
}

TEST(Sweep, SkippedJobsDoNotRun)
{
    SweepRunner runner(2, SweepOptions{});
    SweepJob skipped;
    skipped.workload = &workloadByName("Sieve");
    skipped.scale = 10;
    skipped.skip = true;
    runner.add(skipped);
    runner.add(workloadByName("LL1"), MachineConfig{}, 10);

    std::vector<JobOutcome> outcomes = runner.runAll();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status, JobStatus::Skipped);
    EXPECT_EQ(outcomes[0].attempts, 0u);
    EXPECT_EQ(outcomes[0].result.benchmark, "Sieve")
        << "identity survives for reporting";
    EXPECT_FALSE(outcomes[0].result.verified);
    EXPECT_EQ(outcomes[1].status, JobStatus::Ok);
}

TEST(Sweep, CompletionCallbackSeesEveryJob)
{
    SweepRunner runner(4, SweepOptions{});
    std::vector<SweepJob> grid = smallGrid();
    for (SweepJob &job : grid)
        runner.add(std::move(job));

    // The callback contract: serialized invocations, one per job, so
    // plain shared state needs no locking.
    std::vector<bool> seen(runner.pending(), false);
    std::size_t calls = 0;
    std::vector<JobOutcome> outcomes =
        runner.runAll([&](std::size_t index, const JobOutcome &o) {
            ++calls;
            ASSERT_LT(index, seen.size());
            EXPECT_FALSE(seen[index]) << "double completion";
            seen[index] = true;
            EXPECT_EQ(o.status, JobStatus::Ok);
        });
    EXPECT_EQ(calls, outcomes.size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_TRUE(seen[i]) << "job " << i << " never completed";
}

TEST(Sweep, StatusNamesAreStable)
{
    EXPECT_STREQ(jobStatusName(JobStatus::Ok), "ok");
    EXPECT_STREQ(jobStatusName(JobStatus::Failed), "failed");
    EXPECT_STREQ(jobStatusName(JobStatus::TimedOut), "timed_out");
    EXPECT_STREQ(jobStatusName(JobStatus::Skipped), "skipped");
}

TEST(Sweep, DefaultJobsReadsEnvironment)
{
    setenv("SDSP_BENCH_JOBS", "3", 1);
    EXPECT_EQ(SweepRunner::defaultJobs(), 3u);
    EXPECT_EQ(SweepRunner(0).jobs(), 3u);
    // An explicit constructor argument wins over the environment.
    EXPECT_EQ(SweepRunner(7).jobs(), 7u);
    unsetenv("SDSP_BENCH_JOBS");
    EXPECT_GE(SweepRunner::defaultJobs(), 1u);
}

TEST(SweepDeathTest, BadJobsEnvIsFatal)
{
    setenv("SDSP_BENCH_JOBS", "0", 1);
    EXPECT_EXIT(SweepRunner::defaultJobs(),
                ::testing::ExitedWithCode(1), "SDSP_BENCH_JOBS");
    setenv("SDSP_BENCH_JOBS", "lots", 1);
    EXPECT_EXIT(SweepRunner::defaultJobs(),
                ::testing::ExitedWithCode(1), "SDSP_BENCH_JOBS");
    unsetenv("SDSP_BENCH_JOBS");
}

TEST(Artifacts, RunResultSerializesHeadlineFields)
{
    MachineConfig cfg;
    cfg.numThreads = 2;
    RunResult result =
        runWorkload(workloadByName("Sieve"), cfg, /*scale=*/10);
    ASSERT_TRUE(result.verified) << result.verifyMessage;

    JsonWriter writer;
    appendJson(writer, result, /*include_stats=*/true);
    const std::string &json = writer.str();
    EXPECT_NE(json.find("\"benchmark\":\"Sieve\""), std::string::npos);
    EXPECT_NE(json.find("\"verified\":true"), std::string::npos);
    EXPECT_NE(json.find("\"threads\":2"), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(json.find("\"wall_seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"sim.cycles\":"), std::string::npos);
    EXPECT_GT(result.wallSeconds, 0.0);
}

TEST(Artifacts, ConfigKeySeparatesDistinctMachines)
{
    MachineConfig a, b;
    EXPECT_EQ(configKey(a), configKey(b));
    b.fu = FuConfig::sdspEnhanced();
    EXPECT_NE(configKey(a), configKey(b)) << "FU complement must be "
                                             "part of the identity";
    MachineConfig c;
    c.dcache.ways = 1;
    EXPECT_NE(configKey(a), configKey(c));
    MachineConfig d;
    d.fetchWeights = {2, 1, 1, 1};
    EXPECT_NE(configKey(a), configKey(d));
}

} // namespace
} // namespace sdsp

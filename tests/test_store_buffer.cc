/**
 * @file
 * Unit tests for the store buffer: ordering, commit gating, drains,
 * same-thread forwarding and selective squash.
 */

#include <gtest/gtest.h>

#include "memory/store_buffer.hh"

namespace sdsp
{
namespace
{

struct Fixture : public ::testing::Test
{
    Fixture() : sb(4), cache(CacheConfig{}), mem(256) {}

    StoreBuffer sb;
    DataCache cache;
    MainMemory mem;
};

TEST_F(Fixture, FillsAndReportsFull)
{
    EXPECT_FALSE(sb.full());
    for (Tag seq = 1; seq <= 4; ++seq)
        sb.insert(seq, 0, static_cast<Addr>(seq * 8), seq);
    EXPECT_TRUE(sb.full());
    EXPECT_EQ(sb.size(), 4u);
}

TEST_F(Fixture, UncommittedStoresDoNotDrain)
{
    sb.insert(1, 0, 8, 42);
    cache.beginCycle(1);
    EXPECT_EQ(sb.drain(cache, mem, 1), 0u);
    EXPECT_EQ(mem.read(8), 0u);
}

TEST_F(Fixture, CommittedHeadDrainsInOrder)
{
    sb.insert(1, 0, 8, 42);
    sb.insert(2, 0, 16, 43);
    sb.commitUpTo(0, 2);
    cache.beginCycle(1);
    // Default cache has one port: one drain per cycle.
    EXPECT_EQ(sb.drain(cache, mem, 1), 1u);
    EXPECT_EQ(mem.read(8), 42u);
    EXPECT_EQ(mem.read(16), 0u);
    cache.beginCycle(2);
    EXPECT_EQ(sb.drain(cache, mem, 2), 1u);
    EXPECT_EQ(mem.read(16), 43u);
    EXPECT_TRUE(sb.empty());
}

TEST_F(Fixture, DrainBlockedByUncommittedHead)
{
    // Head (oldest) uncommitted: nothing behind it may drain, which
    // preserves global store order.
    sb.insert(1, 0, 8, 1);
    sb.insert(2, 1, 16, 2);
    sb.commitUpTo(1, 2); // commit only the younger store
    cache.beginCycle(1);
    EXPECT_EQ(sb.drain(cache, mem, 1), 0u);
}

TEST_F(Fixture, OutOfOrderInsertKeptSorted)
{
    // Stores can execute out of order; the buffer reorders by seq.
    sb.insert(5, 0, 40, 55);
    sb.insert(2, 0, 16, 22);
    ASSERT_EQ(sb.contents().size(), 2u);
    EXPECT_EQ(sb.contents()[0].seq, 2u);
    EXPECT_EQ(sb.contents()[1].seq, 5u);
}

TEST_F(Fixture, ForwardsYoungestOlderSameThreadStore)
{
    sb.insert(1, 0, 8, 100);
    sb.insert(3, 0, 8, 300);
    // A load with seq 5 sees the youngest older store (seq 3).
    auto fwd = sb.forward(0, 8, 5);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_EQ(*fwd, 300u);
    // A load with seq 2 sees only seq 1.
    fwd = sb.forward(0, 8, 2);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_EQ(*fwd, 100u);
}

TEST_F(Fixture, NeverForwardsAcrossThreads)
{
    sb.insert(1, 0, 8, 100);
    EXPECT_FALSE(sb.forward(1, 8, 5).has_value());
}

TEST_F(Fixture, NeverForwardsFromYoungerStore)
{
    sb.insert(7, 0, 8, 100);
    EXPECT_FALSE(sb.forward(0, 8, 5).has_value());
}

TEST_F(Fixture, NoForwardOnAddressMismatch)
{
    sb.insert(1, 0, 8, 100);
    EXPECT_FALSE(sb.forward(0, 16, 5).has_value());
}

TEST_F(Fixture, SquashRemovesYoungerSameThreadOnly)
{
    sb.insert(1, 0, 8, 1);
    sb.insert(2, 1, 16, 2);
    sb.insert(3, 0, 24, 3);
    sb.squash(0, 1); // drop thread 0 stores with seq > 1
    ASSERT_EQ(sb.contents().size(), 2u);
    EXPECT_EQ(sb.contents()[0].seq, 1u);
    EXPECT_EQ(sb.contents()[1].seq, 2u);
}

TEST_F(Fixture, SquashingCommittedStorePanics)
{
    sb.insert(3, 0, 24, 3);
    sb.commitUpTo(0, 3);
    EXPECT_DEATH(sb.squash(0, 1), "committed");
}

TEST_F(Fixture, OverflowPanics)
{
    for (Tag seq = 1; seq <= 4; ++seq)
        sb.insert(seq, 0, 8, 0);
    EXPECT_DEATH(sb.insert(5, 0, 8, 0), "overflow");
}

TEST_F(Fixture, StatsReport)
{
    sb.insert(1, 0, 8, 9);
    sb.commitUpTo(0, 1);
    cache.beginCycle(1);
    sb.drain(cache, mem, 1);
    sb.forward(0, 8, 2); // no match: already drained
    sb.noteFullStall();
    StatsRegistry registry;
    sb.reportStats(registry, "sb");
    EXPECT_DOUBLE_EQ(registry.get("sb.inserts"), 1.0);
    EXPECT_DOUBLE_EQ(registry.get("sb.drains"), 1.0);
    EXPECT_DOUBLE_EQ(registry.get("sb.fullStalls"), 1.0);
}

TEST_F(Fixture, DrainRespectsCachePortBudget)
{
    CacheConfig cfg;
    cfg.ports = 2;
    DataCache wide(cfg);
    sb.insert(1, 0, 8, 1);
    sb.insert(2, 0, 16, 2);
    sb.insert(3, 0, 24, 3);
    sb.commitUpTo(0, 3);
    wide.beginCycle(1);
    EXPECT_EQ(sb.drain(wide, mem, 1), 2u);
    wide.beginCycle(2);
    EXPECT_EQ(sb.drain(wide, mem, 2), 1u);
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Unit tests for the programmatic assembler (ProgramBuilder),
 * including label fix-ups, the data section, pseudo-instructions and
 * the block-alignment layout passes.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "isa/interpreter.hh"

namespace sdsp
{
namespace
{

TEST(Builder, ForwardAndBackwardBranches)
{
    ProgramBuilder b;
    b.ldi(1, 3);
    b.label("top");
    b.addi(2, 2, 1);
    b.addi(1, 1, -1);
    b.bne(1, 0, "top"); // backward (r0 stays 0)
    b.beq(1, 0, "out"); // forward
    b.ldi(2, 99);       // skipped
    b.label("out");
    b.halt();
    Program prog = b.finish();

    Interpreter interp(prog, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 2), 3u);
}

TEST(Builder, JumpAndLink)
{
    ProgramBuilder b;
    b.jal(5, "func");
    b.ldi(2, 1); // executed after return
    b.halt();
    b.label("func");
    b.ldi(3, 7);
    b.jr(5);
    Program prog = b.finish();

    Interpreter interp(prog, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 3), 7u);
    EXPECT_EQ(interp.reg(0, 2), 1u);
    EXPECT_EQ(interp.reg(0, 5), 1u); // link = pc+1
}

TEST(Builder, DataSectionLayoutAndInit)
{
    ProgramBuilder b;
    Addr first = b.dword("first", 0x1122334455667788ull);
    Addr arr = b.array("arr", 4);
    Addr pi = b.dvalue("pi", 3.25);
    b.halt();
    Program prog = b.finish();

    EXPECT_EQ(first, 0u);
    EXPECT_EQ(arr, 8u);
    EXPECT_EQ(pi, 40u);
    EXPECT_EQ(readWord(prog.data, first), 0x1122334455667788ull);
    EXPECT_EQ(readWord(prog.data, arr + 8), 0u);
    EXPECT_DOUBLE_EQ(readDouble(prog.data, pi), 3.25);
    EXPECT_EQ(b.dataAddress("arr"), 8u);
    EXPECT_TRUE(b.hasDataSymbol("pi"));
    EXPECT_FALSE(b.hasDataSymbol("nope"));
}

TEST(Builder, LiSmallUsesOneInstruction)
{
    ProgramBuilder b;
    b.li(1, -512);
    b.halt();
    EXPECT_EQ(b.finish().code.size(), 2u);
}

TEST(Builder, LiLargeComposesLuiOri)
{
    ProgramBuilder b;
    b.li(1, 0x123456);
    b.halt();
    Program prog = b.finish();

    Interpreter interp(prog, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 1), 0x123456u);
}

TEST(Builder, LiExactMultipleOf1024SkipsOri)
{
    ProgramBuilder b;
    b.li(1, 2048);
    b.halt();
    Program prog = b.finish();
    EXPECT_EQ(prog.code.size(), 2u); // LUI + HALT only

    Interpreter interp(prog, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 1), 2048u);
}

TEST(Builder, LiUnencodableIsFatal)
{
    ProgramBuilder b;
    EXPECT_EXIT(b.li(1, 1ll << 40), ::testing::ExitedWithCode(1),
                "not encodable");
}

TEST(Builder, LaLoadsDataAddress)
{
    ProgramBuilder b;
    b.array("pad", 100);
    b.dword("target", 77);
    b.la(1, "target");
    b.ld(2, 0, 1);
    b.halt();
    Program prog = b.finish();

    Interpreter interp(prog, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 2), 77u);
}

TEST(Builder, UndefinedLabelIsFatal)
{
    ProgramBuilder b;
    b.j("nowhere");
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1),
                "undefined label");
}

TEST(Builder, DuplicateLabelIsFatal)
{
    ProgramBuilder b;
    b.label("dup");
    EXPECT_EXIT(b.label("dup"), ::testing::ExitedWithCode(1),
                "duplicate");
}

TEST(Builder, DuplicateDataSymbolIsFatal)
{
    ProgramBuilder b;
    b.dword("dup", 0);
    EXPECT_EXIT(b.dword("dup", 1), ::testing::ExitedWithCode(1),
                "duplicate");
}

TEST(Builder, BranchOutOfRangeIsFatal)
{
    ProgramBuilder b;
    b.label("far");
    for (int i = 0; i < 600; ++i)
        b.nop();
    b.beq(0, 0, "far");
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(Builder, TracksMaxRegister)
{
    ProgramBuilder b;
    b.add(5, 17, 3);
    EXPECT_EQ(b.maxRegisterUsed(), 17u);
    b.ld(40, 0, 2);
    EXPECT_EQ(b.maxRegisterUsed(), 40u);
}

TEST(Builder, MemorySizeIncludesScratchRoundedUp)
{
    ProgramBuilder b;
    b.dword("w", 1);
    b.halt();
    Program prog = b.finish(13); // 8 data + 13 scratch -> rounded
    EXPECT_EQ(prog.memorySize % 8, 0u);
    EXPECT_GE(prog.memorySize, 21u);
}

// ---- Layout passes (paper section 6.1 item 2) ----

TEST(Layout, AlignsBranchTargetsToBlocks)
{
    ProgramBuilder b;
    b.nop();
    b.nop();
    b.label("target"); // at index 2: misaligned
    b.addi(1, 1, 1);
    b.slti(2, 1, 10);
    b.bne(2, 0, "target");
    b.halt();
    LayoutOptions layout;
    layout.alignTargetsToBlocks = true;
    Program prog = b.finish(0, layout);

    // The target must now start a 4-instruction fetch block, and the
    // program must still behave identically.
    Interpreter interp(prog, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 1), 10u);

    // Find the padded target: the instruction after the NOP padding.
    Instruction at4 = Instruction::decode(prog.code[4]);
    EXPECT_EQ(at4.op, Opcode::ADDI);
}

TEST(Layout, AlignsBranchesToBlockEnd)
{
    ProgramBuilder b;
    b.ldi(1, 5);
    b.label("top");
    b.addi(1, 1, -1);
    b.bne(1, 0, "top");
    b.halt();
    LayoutOptions layout;
    layout.alignBranchesToBlockEnd = true;
    Program prog = b.finish(0, layout);

    // Every control transfer sits in the last slot of its block.
    for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
        Instruction inst = Instruction::decode(prog.code[pc]);
        if (inst.isControl()) {
            EXPECT_EQ(pc % 4, 3u) << "pc " << pc;
        }
    }

    Interpreter interp(prog, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 1), 0u);
}

TEST(Layout, CombinedPassesPreserveSemantics)
{
    auto build = [](const LayoutOptions &layout) {
        ProgramBuilder b;
        b.dword("acc", 0);
        b.la(10, "acc");
        b.ldi(1, 20);
        b.ldi(2, 0);
        b.label("loop");
        b.add(2, 2, 1);
        b.addi(1, 1, -1);
        b.bne(1, 0, "loop");
        b.st(2, 0, 10);
        b.halt();
        return b.finish(0, layout);
    };

    LayoutOptions both;
    both.alignTargetsToBlocks = true;
    both.alignBranchesToBlockEnd = true;

    Interpreter plain(build({}), 1);
    Interpreter padded(build(both), 1);
    ASSERT_TRUE(plain.run());
    ASSERT_TRUE(padded.run());
    EXPECT_EQ(readWord(plain.memory(), 0), readWord(padded.memory(), 0));
    EXPECT_EQ(readWord(plain.memory(), 0), 210u);
}

TEST(Builder, FinishTwiceIsAnError)
{
    ProgramBuilder b;
    b.halt();
    b.finish();
    EXPECT_DEATH(b.finish(), "finish");
}

} // namespace
} // namespace sdsp

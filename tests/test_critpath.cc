/**
 * @file
 * Tests for the dynamic dependence-graph critical-path engine: the
 * exactness invariant (longest path == measured cycles) across the
 * benchmark grid and machine variants, what-if projection semantics
 * (identity at the baseline, optimistic-bound soundness under
 * capacity increases), breakdown accounting, slack histograms, the
 * WhatIf key=value parser, and the sdsp-critpath CLI.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "critpath/ddg.hh"
#include "critpath/report.hh"
#include "common/logging.hh"
#include "common/stats_registry.hh"
#include "core/processor.hh"
#include "fuzz/generator.hh"
#include "harness/runner.hh"
#include "tools/critpath_cli.hh"
#include "workloads/workload.hh"

namespace sdsp
{
namespace
{

/** A machine for @p threads; the register file scales with the
 *  thread count so 8-thread points keep 32 registers per thread. */
MachineConfig
gridConfig(unsigned threads)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.numRegisters = 32 * threads;
    return cfg;
}

/** Run @p benchmark recorded, returning (trace, config, cycles). */
struct Recorded
{
    DdgTrace trace;
    MachineConfig config;
    Cycle cycles = 0;
};

Recorded
record(const std::string &benchmark, const MachineConfig &config,
       unsigned scale = 10)
{
    DdgRecorder recorder;
    RunResult run = runWorkload(workloadByName(benchmark), config,
                                scale, &recorder);
    EXPECT_TRUE(run.finished) << benchmark;
    EXPECT_TRUE(run.verified) << run.verifyMessage;
    return {recorder.takeTrace(), config, run.cycles};
}

// ---- Exactness across the benchmark grid ----

struct GridPoint
{
    const char *benchmark;
    unsigned threads;
};

class CritpathExact : public ::testing::TestWithParam<GridPoint>
{
};

std::string
pointName(const ::testing::TestParamInfo<GridPoint> &info)
{
    return format("%s_%ut", info.param.benchmark,
                  info.param.threads);
}

TEST_P(CritpathExact, LongestPathEqualsMeasuredCycles)
{
    const GridPoint point = GetParam();
    Recorded run =
        record(point.benchmark, gridConfig(point.threads));
    DdgGraph graph(run.trace, run.config, run.cycles);
    EXPECT_EQ(graph.verifyExact(), "");
    EXPECT_EQ(graph.relax(WhatIf{}).cycles, run.cycles);
}

const GridPoint kGrid[] = {
    {"LL1", 1},     {"LL1", 4},     {"LL1", 8},    {"LL2", 1},
    {"LL2", 4},     {"LL2", 8},     {"LL3", 1},    {"LL3", 4},
    {"LL3", 8},     {"LL5", 1},     {"LL5", 4},    {"LL5", 8},
    {"LL7", 1},     {"LL7", 4},     {"LL7", 8},    {"LL11", 1},
    {"LL11", 4},    {"LL11", 8},    {"Laplace", 1}, {"Laplace", 4},
    {"Laplace", 8}, {"MPD", 1},     {"MPD", 4},    {"MPD", 8},
    {"Matrix", 1},  {"Matrix", 4},  {"Matrix", 8}, {"Sieve", 1},
    {"Sieve", 4},   {"Sieve", 8},   {"Water", 1},  {"Water", 4},
    {"Water", 8},
};

INSTANTIATE_TEST_SUITE_P(Benchmarks, CritpathExact,
                         ::testing::ValuesIn(kGrid), pointName);

// ---- Exactness under machine variants ----

TEST(Critpath, ExactAcrossMachineVariants)
{
    struct Variant
    {
        const char *name;
        void (*apply)(MachineConfig &);
    };
    const Variant variants[] = {
        {"maskedrr",
         [](MachineConfig &c) {
             c.fetchPolicy = FetchPolicy::MaskedRoundRobin;
         }},
        {"nobypass", [](MachineConfig &c) { c.bypassing = false; }},
        {"su16", [](MachineConfig &c) { c.suEntries = 16; }},
        {"su64", [](MachineConfig &c) { c.suEntries = 64; }},
        {"width4", [](MachineConfig &c) { c.issueWidth = 4; }},
        {"sb4", [](MachineConfig &c) { c.storeBufferEntries = 4; }},
    };
    for (const Variant &variant : variants) {
        MachineConfig cfg = gridConfig(4);
        variant.apply(cfg);
        Recorded run = record("LL5", cfg);
        DdgGraph graph(run.trace, run.config, run.cycles);
        EXPECT_EQ(graph.verifyExact(), "") << variant.name;
    }
}

// ---- What-if semantics ----

TEST(Critpath, BaselineWhatIfIsBitExact)
{
    // Re-relaxing under an unchanged configuration must reproduce
    // the measured cycle count exactly, for every breakdown class.
    Recorded run = record("LL2", gridConfig(4));
    DdgGraph graph(run.trace, run.config, run.cycles);

    WhatIf explicit_baseline;
    explicit_baseline.issueWidth = run.config.issueWidth;
    explicit_baseline.suEntries = run.config.suEntries;
    explicit_baseline.bypassing = run.config.bypassing ? 1 : 0;
    ASSERT_TRUE(explicit_baseline.isBaseline(run.config));

    RelaxResult implicit = graph.relax(WhatIf{});
    RelaxResult explicit_r = graph.relax(explicit_baseline);
    EXPECT_EQ(implicit.cycles, run.cycles);
    EXPECT_EQ(explicit_r.cycles, run.cycles);
    for (unsigned c = 0; c < kNumEdgeClasses; ++c)
        EXPECT_EQ(implicit.breakdown[c], explicit_r.breakdown[c])
            << edgeClassName(static_cast<EdgeClass>(c));
}

TEST(Critpath, BreakdownSumsToCriticalPath)
{
    Recorded run = record("Sieve", gridConfig(4));
    DdgGraph graph(run.trace, run.config, run.cycles);
    const WhatIf what_ifs[] = {WhatIf{}, [] {
                                   WhatIf w;
                                   w.issueWidth = 16;
                                   w.perfectDCache = true;
                                   return w;
                               }()};
    for (const WhatIf &what_if : what_ifs) {
        RelaxResult result = graph.relax(what_if);
        Cycle sum = 0;
        for (unsigned c = 0; c < kNumEdgeClasses; ++c)
            sum += result.breakdown[c];
        EXPECT_EQ(sum, result.cycles);
    }
}

TEST(Critpath, CapacityIncreasesAreOptimisticBounds)
{
    // Removing constraints can only shorten the projected critical
    // path: every capacity-increase projection must be <= measured.
    for (const char *benchmark : {"LL1", "LL5", "Sieve", "Water"}) {
        Recorded run = record(benchmark, gridConfig(4));
        DdgGraph graph(run.trace, run.config, run.cycles);
        ASSERT_EQ(graph.verifyExact(), "") << benchmark;

        const char *specs[] = {"issueWidth=16", "suEntries=64",
                               "perfectDCache=1",
                               "infiniteStoreBuffer=1",
                               "issueWidth=32,suEntries=128"};
        for (const char *spec : specs) {
            WhatIf what_if;
            std::istringstream clauses(spec);
            std::string clause, error;
            while (std::getline(clauses, clause, ','))
                ASSERT_TRUE(what_if.applyKeyValue(clause, &error))
                    << error;
            EXPECT_LE(graph.relax(what_if).cycles, run.cycles)
                << benchmark << " " << spec;
        }
    }
}

TEST(Critpath, ConfidenceClassesTagEveryProjection)
{
    Recorded run = record("LL1", gridConfig(4));
    DdgGraph graph(run.trace, run.config, run.cycles);

    // Baseline: exact, and no capacity constraint is ever skipped.
    RelaxResult baseline = graph.relax(WhatIf{});
    EXPECT_EQ(baseline.confidence, Confidence::Exact);
    EXPECT_EQ(baseline.skippedCapacityEdges, 0u);

    // A pure capacity increase is an optimistic bound; every
    // recorded capacity constraint stays representable.
    WhatIf increase;
    std::string error;
    ASSERT_TRUE(increase.applyKeyValue("suEntries=64", &error));
    RelaxResult optimistic = graph.relax(increase);
    EXPECT_EQ(optimistic.confidence, Confidence::OptimisticBound);
    EXPECT_EQ(optimistic.skippedCapacityEdges, 0u);

    // A capacity DECREASE must be tagged pessimistic-bound, with the
    // skipped dynamic constraints counted as evidence: under a
    // smaller capacity some rewired edges point backward in the
    // recorded topological order and cannot be applied.
    WhatIf decrease;
    ASSERT_TRUE(decrease.applyKeyValue("suEntries=16", &error));
    RelaxResult pessimistic = graph.relax(decrease);
    EXPECT_EQ(pessimistic.confidence, Confidence::PessimisticBound);
    EXPECT_GT(pessimistic.skippedCapacityEdges, 0u);

    WhatIf narrower;
    ASSERT_TRUE(narrower.applyKeyValue("issueWidth=4", &error));
    EXPECT_EQ(graph.relax(narrower).confidence,
              Confidence::PessimisticBound);

    // Non-capacity changes (latency, cache, bypassing) re-weight
    // recorded edges: optimistic-bound, not pessimistic.
    WhatIf latency;
    ASSERT_TRUE(latency.applyKeyValue("fuLat.Load=1", &error));
    EXPECT_EQ(graph.relax(latency).confidence,
              Confidence::OptimisticBound);
}

TEST(Critpath, PureCapacityIncreaseDetection)
{
    MachineConfig cfg = gridConfig(4);
    std::string error;

    WhatIf increase;
    ASSERT_TRUE(
        increase.applyKeyValue("issueWidth=16", &error));
    ASSERT_TRUE(increase.applyKeyValue("suEntries=64", &error));
    ASSERT_TRUE(
        increase.applyKeyValue("infiniteStoreBuffer=1", &error));
    EXPECT_TRUE(increase.isPureCapacityIncrease(cfg));

    WhatIf cache;
    ASSERT_TRUE(cache.applyKeyValue("perfectDCache=1", &error));
    EXPECT_FALSE(cache.isPureCapacityIncrease(cfg));

    WhatIf narrower;
    ASSERT_TRUE(narrower.applyKeyValue("issueWidth=4", &error));
    EXPECT_FALSE(narrower.isPureCapacityIncrease(cfg));

    WhatIf latency;
    ASSERT_TRUE(latency.applyKeyValue("fuLat.Load=1", &error));
    EXPECT_FALSE(latency.isPureCapacityIncrease(cfg));
}

TEST(Critpath, FuzzCorpusRespectsSoundness)
{
    // Fuzz-generated programs exercise shapes the workloads do not
    // (irregular branching, store-buffer pressure, faults held out
    // by the generator). Every one must build an exact graph, and
    // capacity-increase projections must stay <= measured.
    std::uint64_t seed = 500;
    for (const std::string &name : FuzzShape::presetNames()) {
        FuzzShape shape = FuzzShape::preset(name);
        for (unsigned threads : {1u, 4u}) {
            MachineConfig cfg;
            cfg.numThreads = threads;
            Program program = generateProgram(shape, ++seed);

            DdgRecorder recorder;
            Processor cpu(cfg, program);
            cpu.setTraceSink(&recorder);
            SimResult sim = cpu.run();
            ASSERT_TRUE(sim.finished) << name;

            DdgGraph graph(recorder.trace(), cfg, sim.cycles);
            EXPECT_EQ(graph.verifyExact(), "")
                << name << " t=" << threads << " seed " << seed;

            WhatIf wider;
            wider.issueWidth = 16;
            wider.suEntries = 64;
            wider.infiniteStoreBuffer = true;
            EXPECT_LE(graph.relax(wider).cycles, sim.cycles)
                << name << " t=" << threads << " seed " << seed;
        }
    }
}

// ---- Slack, stats, JSON ----

TEST(Critpath, SlackHistogramsCoverEveryStoredEdge)
{
    Recorded run = record("LL3", gridConfig(4));
    DdgGraph graph(run.trace, run.config, run.cycles);
    std::array<Distribution, kNumEdgeClasses> slack;
    graph.slackHistograms(slack);
    std::uint64_t samples = 0;
    for (const Distribution &dist : slack)
        samples += dist.count();
    EXPECT_EQ(samples, graph.edgeCount());
}

TEST(Critpath, StatsRegistryExport)
{
    Recorded run = record("LL1", gridConfig(1));
    DdgGraph graph(run.trace, run.config, run.cycles);
    RelaxResult baseline = graph.relax(WhatIf{});

    StatsRegistry stats;
    critpathReportStats(graph, baseline, stats);
    EXPECT_EQ(stats.get("critpath.cycles"), run.cycles);
    EXPECT_EQ(stats.get("critpath.nodes"), graph.nodeCount());
    EXPECT_EQ(stats.get("critpath.edges"), graph.edgeCount());
    Cycle sum = 0;
    for (unsigned c = 0; c < kNumEdgeClasses; ++c) {
        std::string key =
            std::string("critpath.breakdown.") +
            edgeClassName(static_cast<EdgeClass>(c));
        if (stats.has(key))
            sum += stats.get(key);
    }
    EXPECT_EQ(sum, run.cycles);
}

TEST(Critpath, JsonReportShape)
{
    Recorded run = record("Matrix", gridConfig(4));
    DdgGraph graph(run.trace, run.config, run.cycles);
    RelaxResult baseline = graph.relax(WhatIf{});

    WhatIfProjection projection;
    projection.name = "issueWidth=16";
    projection.whatIf.issueWidth = 16;
    projection.result = graph.relax(projection.whatIf);

    std::string json =
        critpathJson("Matrix", graph, baseline, {projection});
    EXPECT_NE(json.find("\"schema\":\"sdsp-critpath-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"Matrix\""),
              std::string::npos);
    EXPECT_NE(json.find("\"exact\":true"), std::string::npos);
    EXPECT_NE(json.find("\"issueWidth=16\""), std::string::npos);
}

// ---- WhatIf parser ----

TEST(WhatIf, ParsesEveryKey)
{
    WhatIf what_if;
    std::string error;
    EXPECT_TRUE(what_if.applyKeyValue("issueWidth=16", &error));
    EXPECT_TRUE(what_if.applyKeyValue("suEntries=64", &error));
    EXPECT_TRUE(what_if.applyKeyValue("perfectDCache=1", &error));
    EXPECT_TRUE(
        what_if.applyKeyValue("infiniteStoreBuffer=1", &error));
    EXPECT_TRUE(what_if.applyKeyValue("bypassing=0", &error));
    EXPECT_TRUE(what_if.applyKeyValue("fuLat.IntMul=1", &error));
    EXPECT_EQ(what_if.issueWidth, 16);
    EXPECT_EQ(what_if.suEntries, 64);
    EXPECT_TRUE(what_if.perfectDCache);
    EXPECT_TRUE(what_if.infiniteStoreBuffer);
    EXPECT_EQ(what_if.bypassing, 0);
    EXPECT_EQ(
        what_if.fuLatency[static_cast<unsigned>(FuClass::IntMul)],
        1);
}

TEST(WhatIf, RejectsBadInput)
{
    WhatIf what_if;
    std::string error;
    EXPECT_FALSE(what_if.applyKeyValue("noequals", &error));
    EXPECT_FALSE(what_if.applyKeyValue("bogusKey=3", &error));
    EXPECT_FALSE(what_if.applyKeyValue("issueWidth=zap", &error));
    EXPECT_FALSE(what_if.applyKeyValue("fuLat.NotAUnit=2", &error));
    EXPECT_FALSE(error.empty());
}

TEST(WhatIf, BaselineDetection)
{
    MachineConfig cfg;
    WhatIf what_if;
    EXPECT_TRUE(what_if.isBaseline(cfg));
    what_if.issueWidth = static_cast<int>(cfg.issueWidth);
    EXPECT_TRUE(what_if.isBaseline(cfg));
    what_if.issueWidth = 16;
    EXPECT_FALSE(what_if.isBaseline(cfg));
}

// ---- CLI ----

TEST(CritpathCli, WorkloadRunIsExactAndProjects)
{
    CritpathCliOptions options = parseCritpathCliOptions(
        {"--workload", "LL1", "--scale", "10", "--what-if",
         "issueWidth=16"});
    ASSERT_TRUE(options.ok) << options.error;
    std::ostringstream out;
    EXPECT_EQ(runCritpathCli(options, out), 0);
    EXPECT_NE(out.str().find("exact"), std::string::npos);
    EXPECT_NE(out.str().find("issueWidth=16"), std::string::npos);
}

TEST(CritpathCli, RejectsConflictingInputs)
{
    CritpathCliOptions options = parseCritpathCliOptions(
        {"--workload", "LL1", "--trace", "x.trace"});
    EXPECT_FALSE(options.ok);
}

TEST(CritpathCli, UnknownWorkloadFailsCleanly)
{
    CritpathCliOptions options = parseCritpathCliOptions(
        {"--workload", "NoSuchBenchmark"});
    ASSERT_TRUE(options.ok) << options.error;
    std::ostringstream out;
    EXPECT_EQ(runCritpathCli(options, out), 1);
}

} // namespace
} // namespace sdsp

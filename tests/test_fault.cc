/**
 * @file
 * Tests for the fault-injection plan: spec parsing, matching,
 * attempt scoping, and the injected actions.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "harness/fault.hh"

namespace sdsp
{
namespace
{

TEST(FaultPlan, EmptyAndUnsetSpecs)
{
    EXPECT_TRUE(FaultPlan().empty());
    unsetenv("SDSP_BENCH_FAULT");
    EXPECT_TRUE(FaultPlan::fromEnvironment().empty());
    FaultPlan().inject("LL1/fig05", 0); // no-op, must not throw
}

TEST(FaultPlan, ParsesRules)
{
    FaultPlan plan = FaultPlan::fromSpec(
        "LL1/fig05=throw;Matrix=throw*1;Sieve=delay:300;LL3=exit:9");
    ASSERT_EQ(plan.rules().size(), 4u);

    EXPECT_EQ(plan.rules()[0].match, "LL1/fig05");
    EXPECT_EQ(plan.rules()[0].action, FaultAction::Throw);
    EXPECT_EQ(plan.rules()[0].attemptLimit, 0u);

    EXPECT_EQ(plan.rules()[1].match, "Matrix");
    EXPECT_EQ(plan.rules()[1].attemptLimit, 1u);

    EXPECT_EQ(plan.rules()[2].action, FaultAction::Delay);
    EXPECT_EQ(plan.rules()[2].delayMillis, 300u);

    EXPECT_EQ(plan.rules()[3].action, FaultAction::Exit);
    EXPECT_EQ(plan.rules()[3].exitCode, 9);
}

TEST(FaultPlan, SubstringAndWildcardMatching)
{
    FaultPlan plan = FaultPlan::fromSpec("LL1/fig05=throw");
    EXPECT_TRUE(plan.matches("LL1/fig05", 0));
    EXPECT_TRUE(plan.matches("LL1/fig05", 7));
    EXPECT_FALSE(plan.matches("LL1/fig03", 0));
    EXPECT_FALSE(plan.matches("LL12/fig05", 0));

    FaultPlan substr = FaultPlan::fromSpec("LL1=throw");
    EXPECT_TRUE(substr.matches("LL1/fig05", 0));
    EXPECT_TRUE(substr.matches("LL12/fig03", 0))
        << "plain substring match";

    FaultPlan all = FaultPlan::fromSpec("*=throw");
    EXPECT_TRUE(all.matches("anything/at-all", 0));
}

TEST(FaultPlan, AttemptScopedRules)
{
    FaultPlan plan = FaultPlan::fromSpec("Matrix=throw*2");
    EXPECT_TRUE(plan.matches("Matrix/fig05", 0));
    EXPECT_TRUE(plan.matches("Matrix/fig05", 1));
    EXPECT_FALSE(plan.matches("Matrix/fig05", 2))
        << "attempt 2 is past the *2 limit, so the retry succeeds";
}

TEST(FaultPlan, ThrowInjection)
{
    FaultPlan plan = FaultPlan::fromSpec("LL1=throw*1");
    EXPECT_THROW(
        {
            try {
                plan.inject("LL1/fig05", 0);
            } catch (const std::runtime_error &err) {
                EXPECT_NE(std::string(err.what()).find("LL1/fig05"),
                          std::string::npos)
                    << "the error names the injected point";
                throw;
            }
        },
        std::runtime_error);
    EXPECT_NO_THROW(plan.inject("LL1/fig05", 1));
    EXPECT_NO_THROW(plan.inject("Sieve/fig05", 0));
}

TEST(FaultPlan, DelayInjectionSleeps)
{
    FaultPlan plan = FaultPlan::fromSpec("LL1=delay:30");
    auto start = std::chrono::steady_clock::now();
    plan.inject("LL1/fig05", 0);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    EXPECT_GE(elapsed, 0.025);
}

TEST(FaultPlanDeathTest, ExitInjectionTerminates)
{
    FaultPlan plan = FaultPlan::fromSpec("LL1=exit:9");
    EXPECT_EXIT(plan.inject("LL1/fig05", 0),
                ::testing::ExitedWithCode(9), "");
}

TEST(FaultPlanDeathTest, MalformedSpecsAreFatal)
{
    for (const char *bad :
         {"noequals", "=throw", "LL1=", "LL1=explode", "LL1=delay:",
          "LL1=delay:x", "LL1=exit:999", "LL1=throw*0",
          "LL1=throw*9999"}) {
        EXPECT_EXIT((void)FaultPlan::fromSpec(bad),
                    ::testing::ExitedWithCode(1), "SDSP_BENCH_FAULT")
            << bad;
    }
}

TEST(FaultPlan, EnvironmentRoundTrip)
{
    setenv("SDSP_BENCH_FAULT", "Water=throw*1", 1);
    FaultPlan plan = FaultPlan::fromEnvironment();
    ASSERT_EQ(plan.rules().size(), 1u);
    EXPECT_EQ(plan.rules()[0].match, "Water");
    unsetenv("SDSP_BENCH_FAULT");
}

} // namespace
} // namespace sdsp

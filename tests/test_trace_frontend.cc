/**
 * @file
 * Tests for the trace frontend: record → read round trips, exact
 * replay (bit-identical timing), stream-replay cocktails, and the
 * reader's named error paths — a malformed trace must always be a
 * TraceError, never a crash.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/processor.hh"
#include "trace_frontend/replay.hh"
#include "trace_frontend/trace_format.hh"

namespace sdsp
{
namespace
{

/** A small per-thread-disjoint workload: each thread sums a short
 *  countdown into its own 16-byte slot. */
const char *kDemoSource = R"(
.space scratch 64
    tid r1
    slli r1, r1, 4
    ldi r2, 5
    ldi r3, 0
top:
    add r3, r3, r2
    st r3, 0(r1)
    addi r2, r2, -1
    bne r2, r0, top
    ld r4, 0(r1)
    halt
)";

MachineConfig
demoConfig(unsigned threads)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.maxCycles = 1'000'000;
    return cfg;
}

/** Run the demo program with a TraceRecorder attached; returns the
 *  trace text and the run's result. */
std::string
recordDemo(const MachineConfig &cfg, SimResult *result_out = nullptr)
{
    Program prog = assemble(kDemoSource).program;
    std::ostringstream out;
    TraceRecorder recorder(out, prog, cfg, "demo.s");
    Processor cpu(cfg, prog);
    cpu.setTraceSink(&recorder);
    SimResult result = cpu.run();
    EXPECT_TRUE(result.finished);
    recorder.noteResult(result);
    recorder.finish();
    if (result_out)
        *result_out = result;
    return out.str();
}

TraceReadResult
readText(const std::string &text)
{
    std::istringstream in(text);
    return readTrace(in);
}

TEST(TraceFormat, RecordReadRoundTrip)
{
    MachineConfig cfg = demoConfig(2);
    SimResult run;
    std::string text = recordDemo(cfg, &run);

    TraceReadResult loaded = readText(text);
    ASSERT_TRUE(loaded.ok) << loaded.error.toString();
    const RecordedTrace &trace = loaded.trace;

    EXPECT_EQ(trace.version, kTraceFormatVersion);
    EXPECT_EQ(trace.threads, 2u);
    EXPECT_EQ(trace.cycles, run.cycles);
    EXPECT_EQ(trace.committed, run.committedInstructions);
    EXPECT_EQ(trace.totalInsts(), run.committedInstructions);
    EXPECT_EQ(trace.source, "demo.s");
    EXPECT_EQ(trace.machine, cfg.toString());

    Program prog = assemble(kDemoSource).program;
    Program rebuilt = trace.toProgram();
    EXPECT_EQ(rebuilt.code, prog.code);
    EXPECT_EQ(rebuilt.memorySize, prog.memorySize);
    EXPECT_EQ(rebuilt.entry, prog.entry);
}

TEST(TraceFormat, ExactReplayIsBitIdentical)
{
    MachineConfig cfg = demoConfig(2);
    SimResult run;
    std::string text = recordDemo(cfg, &run);

    TraceReadResult loaded = readText(text);
    ASSERT_TRUE(loaded.ok) << loaded.error.toString();

    ExactReplayResult replay = replayExact(loaded.trace, cfg);
    EXPECT_TRUE(replay.verified) << replay.firstMismatch;
    EXPECT_EQ(replay.mismatches, 0u);
    EXPECT_TRUE(replay.sim.finished);
    EXPECT_EQ(replay.sim.cycles, run.cycles);
    EXPECT_EQ(replay.sim.committedInstructions,
              run.committedInstructions);
}

TEST(TraceFormat, ExactReplayDetectsTamperedStream)
{
    MachineConfig cfg = demoConfig(1);
    std::string text = recordDemo(cfg);
    // Flip a recorded pc on some inst line: replay must notice.
    const std::string needle = R"("kind":"inst","tid":0,"pc":2,)";
    std::size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    std::string tampered = text;
    tampered.replace(at, needle.size(),
                     R"("kind":"inst","tid":0,"pc":3,)");

    TraceReadResult loaded = readText(tampered);
    ASSERT_TRUE(loaded.ok) << loaded.error.toString();
    ExactReplayResult replay = replayExact(loaded.trace, cfg);
    EXPECT_FALSE(replay.verified);
    EXPECT_GT(replay.mismatches, 0u);
    EXPECT_FALSE(replay.firstMismatch.empty());
}

TEST(TraceReplay, StreamCocktailRunsToCompletion)
{
    // Record two runs and mix their streams: thread 0 of each.
    MachineConfig rec_cfg = demoConfig(2);
    std::string text = recordDemo(rec_cfg);
    TraceReadResult a = readText(text);
    TraceReadResult b = readText(text);
    ASSERT_TRUE(a.ok && b.ok);

    std::vector<StreamSource> sources;
    sources.push_back({&a.trace, 0});
    sources.push_back({&b.trace, 1});

    MachineConfig cfg = demoConfig(2);
    StreamReplay cocktail;
    std::string error;
    ASSERT_TRUE(buildStreamReplay(sources, cfg.regsPerThread(), {},
                                  cocktail, &error))
        << error;
    ASSERT_EQ(cocktail.numThreads, 2u);
    ASSERT_EQ(cocktail.program.threadEntries.size(), 2u);

    cfg.numThreads = cocktail.numThreads;
    Processor cpu(cfg, cocktail.program);
    cpu.setReplayAddresses(&cocktail.addresses);
    SimResult result = cpu.run();
    EXPECT_TRUE(result.finished);
    for (unsigned t = 0; t < cocktail.numThreads; ++t) {
        EXPECT_EQ(cpu.committedInstructions(static_cast<ThreadId>(t)),
                  cocktail.streamLengths[t])
            << "thread " << t;
    }
}

// --------------------------------------------------------------------
// Reader error paths: every malformed input is a named error.
// --------------------------------------------------------------------

/** A minimal valid trace, line by line, for mutation tests. */
std::vector<std::string>
validLines()
{
    InstWord halt = assemble("    halt").program.code.at(0);
    std::string word = std::to_string(halt);
    return {
        R"({"kind":"header","version":1,"threads":1,"entry":0,)"
        R"("memory":64,"source":"t.s","machine":"m"})",
        R"({"kind":"code","base":0,"words":[)" + word + "]}",
        R"({"kind":"inst","tid":0,"pc":0,"word":)" + word + "}",
        R"({"kind":"end","cycles":3,"committed":1,"threads":[1]})",
    };
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string text;
    for (const std::string &line : lines)
        text += line + "\n";
    return text;
}

TEST(TraceReader, ValidMinimalTraceLoads)
{
    TraceReadResult result = readText(joinLines(validLines()));
    ASSERT_TRUE(result.ok) << result.error.toString();
    EXPECT_EQ(result.trace.threads, 1u);
    EXPECT_EQ(result.trace.code.size(), 1u);
    EXPECT_EQ(result.trace.perThread[0].size(), 1u);
}

TEST(TraceReader, EmptyTrace)
{
    TraceReadResult result = readText("");
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::EmptyTrace);
}

TEST(TraceReader, TornFinalLine)
{
    std::vector<std::string> lines = validLines();
    lines.pop_back();
    lines.push_back(R"({"kind":"inst","tid":0,"pc)");
    TraceReadResult result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::TornFinalLine);
    EXPECT_EQ(result.error.line, static_cast<unsigned>(lines.size()));
}

TEST(TraceReader, BadJsonMidStream)
{
    std::vector<std::string> lines = validLines();
    lines[1] = "not json at all";
    TraceReadResult result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::BadJson);
    EXPECT_EQ(result.error.line, 2u);
}

TEST(TraceReader, MissingHeader)
{
    std::vector<std::string> lines = validLines();
    lines.erase(lines.begin());
    TraceReadResult result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::MissingHeader);
    EXPECT_EQ(result.error.line, 1u);
}

TEST(TraceReader, BadVersion)
{
    std::vector<std::string> lines = validLines();
    std::size_t at = lines[0].find("\"version\":1");
    ASSERT_NE(at, std::string::npos);
    lines[0].replace(at, 11, "\"version\":99");
    TraceReadResult result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::BadVersion);
}

TEST(TraceReader, UnknownOpcodeInCode)
{
    std::vector<std::string> lines = validLines();
    // 0xFF000000: opcode byte 255, far beyond the defined set.
    lines[1] = R"({"kind":"code","base":0,"words":[4278190080]})";
    TraceReadResult result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::UnknownOpcode);
    EXPECT_EQ(result.error.line, 2u);
}

TEST(TraceReader, OutOfRangeThreadId)
{
    std::vector<std::string> lines = validLines();
    std::size_t at = lines[2].find("\"tid\":0");
    ASSERT_NE(at, std::string::npos);
    lines[2].replace(at, 7, "\"tid\":5");
    TraceReadResult result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::BadThreadId);
    EXPECT_EQ(result.error.line, 3u);
}

TEST(TraceReader, OutOfRangePc)
{
    std::vector<std::string> lines = validLines();
    std::size_t at = lines[2].find("\"pc\":0");
    ASSERT_NE(at, std::string::npos);
    lines[2].replace(at, 6, "\"pc\":7");
    TraceReadResult result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::BadPc);
}

TEST(TraceReader, MissingEnd)
{
    std::vector<std::string> lines = validLines();
    lines.pop_back();
    TraceReadResult result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::MissingEnd);
}

TEST(TraceReader, MissingFieldAndBadValue)
{
    std::vector<std::string> lines = validLines();
    lines[2] = R"({"kind":"inst","tid":0,"pc":0})"; // no "word"
    TraceReadResult result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::MissingField);

    lines = validLines();
    std::size_t at = lines[3].find("\"committed\":1");
    ASSERT_NE(at, std::string::npos);
    lines[3].replace(at, 13, "\"committed\":9");
    result = readText(joinLines(lines));
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.kind, TraceErrorKind::BadValue);
}

TEST(TraceReader, ErrorKindNamesAreStable)
{
    EXPECT_STREQ(traceErrorKindName(TraceErrorKind::TornFinalLine),
                 "torn-final-line");
    EXPECT_STREQ(traceErrorKindName(TraceErrorKind::UnknownOpcode),
                 "unknown-opcode");
    EXPECT_STREQ(traceErrorKindName(TraceErrorKind::BadThreadId),
                 "bad-thread-id");
    EXPECT_STREQ(traceErrorKindName(TraceErrorKind::EmptyTrace),
                 "empty-trace");
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Tests for the sweep checkpoint: JSONL round trip, raw-result
 * preservation, truncated-line tolerance, and identity verification
 * (suite/scale mismatches are fatal).
 */

#include <gtest/gtest.h>

#include <fstream>

#include "harness/artifacts.hh"
#include "harness/checkpoint.hh"

namespace sdsp
{
namespace
{

class CheckpointFile : public ::testing::Test
{
  protected:
    std::string
    path(const char *name) const
    {
        return ::testing::TempDir() + "sdsp_checkpoint_" + name;
    }

    /** A real verified run, so result serialization is exercised on
     *  genuine measurements. */
    JobOutcome
    goodOutcome(const SweepJob &job) const
    {
        JobOutcome outcome;
        outcome.result =
            runWorkload(*job.workload, job.config, job.scale);
        outcome.status = JobStatus::Ok;
        outcome.attempts = 1;
        EXPECT_TRUE(outcome.result.verified)
            << outcome.result.verifyMessage;
        return outcome;
    }

    SweepJob
    job(const char *name, unsigned threads) const
    {
        SweepJob j;
        j.workload = &workloadByName(name);
        j.config.numThreads = threads;
        j.scale = 10;
        j.label = "fig05";
        return j;
    }
};

TEST_F(CheckpointFile, RoundTripPreservesResultBytes)
{
    std::string file = path("roundtrip.jsonl");
    SweepJob sieve = job("Sieve", 1);
    SweepJob matrix = job("Matrix", 4);
    JobOutcome sieve_outcome = goodOutcome(sieve);
    JobOutcome matrix_outcome = goodOutcome(matrix);

    {
        CheckpointWriter writer(file, "suite_x", 10, /*append=*/false);
        ASSERT_TRUE(writer.ok());
        writer.record(sieve, sieve_outcome);
        writer.record(matrix, matrix_outcome);
    }

    CheckpointLog log = loadCheckpoint(file, "suite_x", 10);
    EXPECT_EQ(log.linesTotal, 2u);
    EXPECT_EQ(log.linesIgnored, 0u);
    ASSERT_EQ(log.entries.size(), 2u);

    const CheckpointEntry &entry = log.entries[0];
    EXPECT_EQ(entry.benchmark, "Sieve");
    EXPECT_EQ(entry.label, "fig05");
    EXPECT_EQ(entry.configKey, configKey(sieve.config));
    EXPECT_EQ(entry.status, "ok");
    EXPECT_TRUE(entry.ok());
    EXPECT_EQ(entry.attempts, 1u);
    EXPECT_EQ(entry.cycles, sieve_outcome.result.cycles);
    EXPECT_EQ(entry.committed, sieve_outcome.result.committed);

    // The property resume depends on: the stored raw text is exactly
    // what serializing the result again would produce.
    JsonWriter expected;
    appendJson(expected, sieve_outcome.result,
               /*include_stats=*/false);
    EXPECT_EQ(entry.resultRaw, expected.str());

    EXPECT_EQ(log.entries[1].benchmark, "Matrix");
    EXPECT_EQ(log.entries[1].configKey, configKey(matrix.config));
}

TEST_F(CheckpointFile, FailedOutcomesAreRecordedNotOk)
{
    std::string file = path("failed.jsonl");
    SweepJob sieve = job("Sieve", 1);
    JobOutcome failed;
    failed.status = JobStatus::Failed;
    failed.error = "injected fault: Sieve/fig05 (attempt 0)";
    failed.attempts = 2;
    failed.result.benchmark = "Sieve";
    failed.result.config = sieve.config;

    {
        CheckpointWriter writer(file, "suite_x", 10, false);
        writer.record(sieve, failed);
    }
    CheckpointLog log = loadCheckpoint(file, "suite_x", 10);
    ASSERT_EQ(log.entries.size(), 1u);
    EXPECT_EQ(log.entries[0].status, "failed");
    EXPECT_FALSE(log.entries[0].ok());
    EXPECT_EQ(log.entries[0].error, failed.error);
    EXPECT_EQ(log.entries[0].attempts, 2u);
}

TEST_F(CheckpointFile, AppendModeKeepsEarlierLines)
{
    std::string file = path("append.jsonl");
    SweepJob sieve = job("Sieve", 1);
    JobOutcome outcome = goodOutcome(sieve);
    {
        CheckpointWriter writer(file, "suite_x", 10, false);
        writer.record(sieve, outcome);
    }
    {
        CheckpointWriter writer(file, "suite_x", 10, /*append=*/true);
        writer.record(job("Matrix", 2), goodOutcome(job("Matrix", 2)));
    }
    CheckpointLog log = loadCheckpoint(file, "suite_x", 10);
    ASSERT_EQ(log.entries.size(), 2u);
    EXPECT_EQ(log.entries[0].benchmark, "Sieve");
    EXPECT_EQ(log.entries[1].benchmark, "Matrix");
}

TEST_F(CheckpointFile, ToleratesTornFinalLine)
{
    std::string file = path("torn.jsonl");
    SweepJob sieve = job("Sieve", 1);
    {
        CheckpointWriter writer(file, "suite_x", 10, false);
        writer.record(sieve, goodOutcome(sieve));
    }
    // Simulate a hard kill mid-write: a second line cut off halfway.
    {
        std::ofstream torn(file, std::ios::app);
        torn << "{\"v\":1,\"suite\":\"suite_x\",\"scale\":10,\"ben";
    }
    CheckpointLog log = loadCheckpoint(file, "suite_x", 10);
    EXPECT_EQ(log.linesTotal, 2u);
    EXPECT_EQ(log.linesIgnored, 1u);
    ASSERT_EQ(log.entries.size(), 1u);
    EXPECT_EQ(log.entries[0].benchmark, "Sieve");
}

TEST_F(CheckpointFile, DisabledWriterDegradesGracefully)
{
    CheckpointWriter writer("/nonexistent-dir/cp.jsonl", "s", 10,
                            false);
    EXPECT_FALSE(writer.ok());
    SweepJob sieve = job("Sieve", 1);
    JobOutcome outcome;
    outcome.status = JobStatus::Failed;
    outcome.result.benchmark = "Sieve";
    outcome.result.config = sieve.config;
    writer.record(sieve, outcome); // must not crash or throw
}

TEST_F(CheckpointFile, MismatchesAreFatal)
{
    std::string file = path("mismatch.jsonl");
    SweepJob sieve = job("Sieve", 1);
    {
        CheckpointWriter writer(file, "suite_x", 10, false);
        writer.record(sieve, goodOutcome(sieve));
    }
    EXPECT_EXIT((void)loadCheckpoint(file, "other_suite", 10),
                ::testing::ExitedWithCode(1), "suite");
    EXPECT_EXIT((void)loadCheckpoint(file, "suite_x", 25),
                ::testing::ExitedWithCode(1), "scale");
    EXPECT_EXIT((void)loadCheckpoint(path("missing.jsonl"), "suite_x",
                                     10),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace sdsp

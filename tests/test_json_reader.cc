/**
 * @file
 * Tests for the JSON reader: values, nesting, escapes, numbers, raw
 * span preservation, error reporting, and round trips through the
 * writer (the property the checkpoint resume path depends on).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/json.hh"
#include "common/json_reader.hh"

namespace sdsp
{
namespace
{

JsonValue
parsed(const std::string &text)
{
    std::string error;
    std::optional<JsonValue> value = parseJson(text, &error);
    EXPECT_TRUE(value.has_value()) << text << ": " << error;
    return value ? *value : JsonValue{};
}

TEST(JsonReader, Scalars)
{
    EXPECT_TRUE(parsed("null").isNull());
    EXPECT_TRUE(parsed("true").asBool());
    EXPECT_FALSE(parsed("false").asBool());
    EXPECT_EQ(parsed("42").asDouble(), 42.0);
    EXPECT_EQ(parsed("-1.5e2").asDouble(), -150.0);
    EXPECT_EQ(parsed("\"hi\"").asString(), "hi");
    EXPECT_TRUE(parsed("  [1, 2]  ").isArray());
}

TEST(JsonReader, NestedStructure)
{
    JsonValue doc = parsed(
        "{\"a\":[1,{\"b\":true}],\"c\":\"x\",\"d\":null}");
    ASSERT_TRUE(doc.isObject());
    ASSERT_EQ(doc.members().size(), 3u);
    const JsonValue *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 2u);
    EXPECT_EQ(a->items()[0].asDouble(), 1.0);
    const JsonValue *b = a->items()[1].find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->asBool());
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonReader, StringEscapes)
{
    EXPECT_EQ(parsed("\"a\\\"b\"").asString(), "a\"b");
    EXPECT_EQ(parsed("\"tab\\there\"").asString(), "tab\there");
    EXPECT_EQ(parsed("\"\\\\\\/\\b\\f\\n\\r\"").asString(),
              "\\/\b\f\n\r");
    EXPECT_EQ(parsed("\"\\u0041\"").asString(), "A");
    // Multi-byte escape and a surrogate pair.
    EXPECT_EQ(parsed("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(parsed("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonReader, ExactIntegerRecovery)
{
    // A 20-digit uint64 loses precision as a double; toUint64
    // reparses the original token instead.
    JsonValue big = parsed("18446744073709551615");
    ASSERT_TRUE(big.toUint64().has_value());
    EXPECT_EQ(*big.toUint64(), 18446744073709551615ull);

    EXPECT_FALSE(parsed("-1").toUint64().has_value());
    EXPECT_FALSE(parsed("1.5").toUint64().has_value());
    EXPECT_FALSE(parsed("\"7\"").toUint64().has_value());
    // Exponent forms are doubles, not exact integer tokens.
    EXPECT_FALSE(parsed("1e3").toUint64().has_value());
}

TEST(JsonReader, RawSpansAreVerbatim)
{
    std::string text =
        "{\"result\":{\"cycles\":7528,\"ipc\":0.9755590223608944},"
        "\"next\":1}";
    JsonValue doc = parsed(text);
    const JsonValue *result = doc.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->raw(),
              "{\"cycles\":7528,\"ipc\":0.9755590223608944}");

    // The checkpoint resume property: splicing the raw span back
    // through the writer reproduces the original bytes.
    JsonWriter w;
    w.beginObject();
    w.key("result").rawValue(result->raw());
    w.field("next", 1u);
    w.endObject();
    EXPECT_EQ(w.str(), text);
}

TEST(JsonReader, WriterReaderRoundTrip)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", "LL1 \"quoted\"\n");
    w.field("cycles", std::uint64_t{18446744073709551615ull});
    w.field("ipc", 0.9755590223608944);
    w.key("tags").beginArray().value("a").value("b").endArray();
    w.endObject();

    JsonValue doc = parsed(w.str());
    EXPECT_EQ(doc.find("name")->asString(), "LL1 \"quoted\"\n");
    EXPECT_EQ(*doc.find("cycles")->toUint64(),
              18446744073709551615ull);
    EXPECT_EQ(doc.find("ipc")->asDouble(), 0.9755590223608944);
    ASSERT_EQ(doc.find("tags")->items().size(), 2u);
}

TEST(JsonReader, ErrorsNameTheOffset)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
          "01", "1.", "[1] trailing", "{\"a\" 1}", "nan"}) {
        std::string error;
        EXPECT_FALSE(parseJson(bad, &error).has_value()) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
    std::string error;
    EXPECT_FALSE(parseJson("[1, x]", &error).has_value());
    EXPECT_NE(error.find("4"), std::string::npos) << error;
}

TEST(JsonReader, DepthLimitIsEnforced)
{
    std::string deep(400, '[');
    deep += std::string(400, ']');
    std::string error;
    EXPECT_FALSE(parseJson(deep, &error).has_value());
    EXPECT_NE(error.find("nested"), std::string::npos) << error;
}

TEST(JsonReader, CheckedAccessorsReturnNullopt)
{
    EXPECT_FALSE(parsed("1").toString().has_value());
    EXPECT_FALSE(parsed("\"x\"").toDouble().has_value());
    EXPECT_EQ(*parsed("\"x\"").toString(), "x");
    EXPECT_EQ(*parsed("2.5").toDouble(), 2.5);
}

} // namespace
} // namespace sdsp

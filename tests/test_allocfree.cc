/**
 * @file
 * Steady-state allocation test: after a warmup period, the per-cycle
 * simulation loop must perform no heap allocation at all. This pins
 * the pooled SU block storage, the reused fetch latch, the scratch
 * vectors and the pre-reserved index structures — a regression in any
 * of them shows up here as a nonzero count, long before it shows up
 * as a throughput loss in sdsp_bench_simspeed.
 *
 * The global operator new of this binary counts allocations while a
 * flag is set; the flag is only set around the measured cycle loop.
 */

#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "harness/batch.hh"
#include "workloads/workload.hh"

namespace
{

bool g_counting = false;
std::size_t g_allocs = 0;

void *
countedAlloc(std::size_t size)
{
    if (g_counting)
        ++g_allocs;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace sdsp
{
namespace
{

void
expectAllocFree(const Workload &workload, unsigned threads)
{
    WorkloadImage image = workload.build(threads, /*scale=*/50);
    MachineConfig cfg;
    cfg.numThreads = threads;

    Processor cpu(cfg, image.program);

    // Warm up: fill the SU block pool, grow the scratch vectors to
    // their high-water marks, take the first mispredict squashes.
    const Cycle warmup = 5000;
    const Cycle measure = 20000;
    for (Cycle i = 0; i < warmup && !cpu.done(); ++i)
        cpu.step();
    ASSERT_FALSE(cpu.done())
        << workload.name() << " too short for the warmup period";

    g_allocs = 0;
    g_counting = true;
    for (Cycle i = 0; i < measure && !cpu.done(); ++i)
        cpu.step();
    g_counting = false;

    EXPECT_EQ(g_allocs, 0u)
        << g_allocs << " heap allocations in the steady-state cycle "
        << "loop of " << workload.name();
}

TEST(AllocFree, GroupOneWorkloadSteadyState)
{
    // LL7: loads, stores, branches — every pipeline path.
    expectAllocFree(*allWorkloads().front(), 4);
}

TEST(AllocFree, BatchedSteadyState)
{
    // The batched cycle loop (harness/batch.hh) must be as
    // allocation-free in steady state as a single processor: the
    // per-lane slice bookkeeping is plain arithmetic and the lanes
    // reuse the same pooled structures as a serial run.
    const Workload &workload = *allWorkloads().front();
    MachineConfig cfg;
    cfg.numThreads = 4;

    // Learn the run length first, so the measured window sits strictly
    // inside the run: lane completion (finishTrace, result packaging)
    // is allowed to allocate, the steady-state loop is not.
    BatchRunner probe(workload, {cfg}, /*scale=*/50);
    Cycle total = probe.run().front().result.cycles;
    ASSERT_GT(total, Cycle{8192})
        << "workload too short for a steady-state window";

    std::vector<MachineConfig> configs(3, cfg);
    BatchRunner batch(workload, configs, /*scale=*/50, RunLimits{},
                      /*slice_cycles=*/1024);

    // Warm up every lane past its pool-filling phase.
    bool running = true;
    while (running && batch.processor(0).cycle() < total / 4)
        running = batch.stepSlice();
    ASSERT_TRUE(running) << "workload too short for the warmup period";

    g_allocs = 0;
    g_counting = true;
    while (running && batch.processor(0).cycle() < (3 * total) / 4)
        running = batch.stepSlice();
    g_counting = false;
    ASSERT_TRUE(running)
        << "a lane finished inside the measured period";

    EXPECT_EQ(g_allocs, 0u)
        << g_allocs << " heap allocations in the steady-state batched "
        << "cycle loop of " << workload.name();
}

TEST(AllocFree, GroupTwoWorkloadSteadyState)
{
    // A Group II benchmark exercises heavier control flow (more
    // squash traffic through the indexed SU).
    const Workload *pick = nullptr;
    for (const Workload *workload : allWorkloads()) {
        if (workload->group() == BenchmarkGroup::GroupII) {
            pick = workload;
            break;
        }
    }
    ASSERT_NE(pick, nullptr);
    expectAllocFree(*pick, 6);
}

} // namespace
} // namespace sdsp

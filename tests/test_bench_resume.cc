/**
 * @file
 * End-to-end tests of the fault-tolerant, resumable sweep, driving
 * the real sdsp_bench_all binary (path baked in via
 * SDSP_BENCH_ALL_PATH): inject faults, kill the process mid-grid,
 * resume from the checkpoint, and require the merged artifact to be
 * identical to an uninterrupted run in every deterministic field.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_reader.hh"

namespace sdsp
{
namespace
{

/** Fields legitimately different between two runs of the same grid:
 *  wall-clock measurements and host metadata. Everything else must
 *  match bit for bit. */
bool
isVolatileKey(const std::string &key)
{
    return key == "wall_seconds" || key == "sim_seconds" ||
           key == "sim_cycles_per_second" ||
           key == "sim_insts_per_second" ||
           key == "serial_seconds" || key == "host";
}

/** Recursive equality over parsed JSON, skipping volatile keys.
 *  Scalars compare by raw token, so 0.1 vs 0.10 would (correctly)
 *  fail: the artifacts must serialize identically, not just
 *  numerically close. */
::testing::AssertionResult
sameDeterministicJson(const JsonValue &a, const JsonValue &b,
                      const std::string &where)
{
    if (a.kind() != b.kind()) {
        return ::testing::AssertionFailure()
               << where << ": kind mismatch (" << a.raw() << " vs "
               << b.raw() << ")";
    }
    if (a.isObject()) {
        std::vector<std::pair<std::string, const JsonValue *>> am, bm;
        for (const auto &[key, value] : a.members()) {
            if (!isVolatileKey(key))
                am.emplace_back(key, &value);
        }
        for (const auto &[key, value] : b.members()) {
            if (!isVolatileKey(key))
                bm.emplace_back(key, &value);
        }
        if (am.size() != bm.size()) {
            return ::testing::AssertionFailure()
                   << where << ": member count " << am.size() << " vs "
                   << bm.size();
        }
        for (std::size_t i = 0; i < am.size(); ++i) {
            if (am[i].first != bm[i].first) {
                return ::testing::AssertionFailure()
                       << where << ": key order \"" << am[i].first
                       << "\" vs \"" << bm[i].first << "\"";
            }
            auto result = sameDeterministicJson(
                *am[i].second, *bm[i].second,
                where + "." + am[i].first);
            if (!result)
                return result;
        }
        return ::testing::AssertionSuccess();
    }
    if (a.isArray()) {
        if (a.items().size() != b.items().size()) {
            return ::testing::AssertionFailure()
                   << where << ": length " << a.items().size()
                   << " vs " << b.items().size();
        }
        for (std::size_t i = 0; i < a.items().size(); ++i) {
            auto result = sameDeterministicJson(
                a.items()[i], b.items()[i],
                where + "[" + std::to_string(i) + "]");
            if (!result)
                return result;
        }
        return ::testing::AssertionSuccess();
    }
    if (a.raw() != b.raw()) {
        return ::testing::AssertionFailure()
               << where << ": " << a.raw() << " vs " << b.raw();
    }
    return ::testing::AssertionSuccess();
}

class BenchResume : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // ctest runs each TEST_F as its own process, possibly in
        // parallel; the directory must be unique per test or one
        // test's rm -rf races another's artifact reads.
        dir = ::testing::TempDir() + "sdsp_bench_resume_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name() +
              "/";
        std::system(("rm -rf '" + dir + "' && mkdir -p '" + dir + "'")
                        .c_str());
    }

    /** Run sdsp_bench_all on a small deterministic slice of the
     *  grid. @return the process exit code. */
    int
    run(const std::string &extra_args, const std::string &fault,
        const char *stdout_name, const char *stderr_name)
    {
        std::string command;
        if (!fault.empty())
            command += "SDSP_BENCH_FAULT='" + fault + "' ";
        command += std::string(SDSP_BENCH_ALL_PATH) +
                   " --jobs 4 --scale 25 --only fig03 " + extra_args +
                   " > " + dir + stdout_name + " 2> " + dir +
                   stderr_name;
        int status = std::system(command.c_str());
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    std::string
    slurp(const std::string &name) const
    {
        std::ifstream file(dir + name);
        EXPECT_TRUE(file.is_open()) << dir + name;
        std::ostringstream text;
        text << file.rdbuf();
        return text.str();
    }

    JsonValue
    artifact(const std::string &name) const
    {
        std::string error;
        std::optional<JsonValue> doc = parseJson(slurp(name), &error);
        EXPECT_TRUE(doc.has_value()) << name << ": " << error;
        return doc ? *doc : JsonValue{};
    }

    std::string dir;
};

TEST_F(BenchResume, KilledSweepResumesToIdenticalArtifact)
{
    // Reference: one uninterrupted, fully verified sweep.
    ASSERT_EQ(run("--out " + dir + "ref.json --no-checkpoint", "",
                  "ref.out", "ref.err"),
              0)
        << slurp("ref.err");

    // Hard-kill the sweep mid-grid (no unwinding, no flush beyond
    // the checkpoint's own per-line flushes), exactly like an OOM
    // kill or a CI timeout.
    int killed = run("--out " + dir + "b.json --checkpoint " + dir +
                         "b.ckpt",
                     "LL3/fig03=exit:9", "b1.out", "b1.err");
    ASSERT_EQ(killed, 9);

    // Resume. Whatever completed before the kill is restored; the
    // rest runs now.
    ASSERT_EQ(run("--out " + dir + "b.json --resume " + dir + "b.ckpt",
                  "", "b2.out", "b2.err"),
              0)
        << slurp("b2.err");
    EXPECT_NE(slurp("b2.out").find("restored"), std::string::npos);

    auto verdict = sameDeterministicJson(artifact("ref.json"),
                                         artifact("b.json"), "$");
    EXPECT_TRUE(verdict);

    // A fully verified resume removes its checkpoint.
    std::ifstream leftover(dir + "b.ckpt");
    EXPECT_FALSE(leftover.is_open());
}

TEST_F(BenchResume, InjectedFailuresAreAllReportedThenResumable)
{
    ASSERT_EQ(run("--out " + dir + "ref.json --no-checkpoint", "",
                  "ref.out", "ref.err"),
              0)
        << slurp("ref.err");

    // Two distinct points throw; the sweep must finish anyway, exit
    // non-zero, and name both in the aggregate report.
    int rc = run("--out " + dir + "c.json --checkpoint " + dir +
                     "c.ckpt",
                 "LL1/fig03=throw;LL5/fig03=throw", "c1.out",
                 "c1.err");
    ASSERT_EQ(rc, 1);
    std::string report = slurp("c1.err");
    EXPECT_NE(report.find("LL1"), std::string::npos) << report;
    EXPECT_NE(report.find("LL5"), std::string::npos) << report;
    EXPECT_NE(report.find("injected fault"), std::string::npos);

    // The artifact still exists and records the failed points with
    // status and error detail.
    std::string failed_artifact = slurp("c.json");
    EXPECT_NE(failed_artifact.find("\"status\":\"failed\""),
              std::string::npos);
    EXPECT_NE(failed_artifact.find("injected fault"),
              std::string::npos);

    // The checkpoint survives a failed sweep, and resuming without
    // the fault re-runs only the failed points and goes green.
    ASSERT_EQ(run("--out " + dir + "c.json --resume " + dir + "c.ckpt",
                  "", "c2.out", "c2.err"),
              0)
        << slurp("c2.err");
    auto verdict = sameDeterministicJson(artifact("ref.json"),
                                         artifact("c.json"), "$");
    EXPECT_TRUE(verdict);
}

TEST_F(BenchResume, ScaleMismatchRefusesToResume)
{
    int rc = run("--out " + dir + "d.json --checkpoint " + dir +
                     "d.ckpt",
                 "LL1/fig03=throw", "d1.out", "d1.err");
    ASSERT_EQ(rc, 1);

    // Same checkpoint, different --scale: the loader must refuse
    // rather than splice incomparable numbers.
    std::string command =
        std::string(SDSP_BENCH_ALL_PATH) +
        " --jobs 2 --scale 50 --only fig03 --out " + dir +
        "d.json --resume " + dir + "d.ckpt > " + dir + "d2.out 2> " +
        dir + "d2.err";
    int status = std::system(command.c_str());
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 1);
    EXPECT_NE(slurp("d2.err").find("scale"), std::string::npos);
}

} // namespace
} // namespace sdsp

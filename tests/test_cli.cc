/**
 * @file
 * Tests for the sdsp-run command-line interface: option parsing,
 * error reporting, and end-to-end runs over a temporary assembly
 * file.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "tools/cli.hh"

namespace sdsp
{
namespace
{

CliOptions
parse(std::initializer_list<const char *> args)
{
    return parseCliOptions(std::vector<std::string>(args.begin(),
                                                    args.end()));
}

class CliFile : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "cli_test_prog.s";
        std::ofstream file(path);
        file << R"(
            .dword out 0
                tid  r2
                nth  r3
                ldi  r1, 10
                ldi  r4, 0
            loop:
                add  r4, r4, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                beq  r2, r0, store
                halt
            store:
                la   r5, out
                st   r4, 0(r5)
                halt
        )";
    }

    std::string path;
};

TEST(CliParse, Defaults)
{
    CliOptions options = parse({"prog.s"});
    ASSERT_TRUE(options.ok);
    EXPECT_EQ(options.programPath, "prog.s");
    EXPECT_EQ(options.config.numThreads, 4u); // MachineConfig default
    EXPECT_FALSE(options.trace);
    EXPECT_FALSE(options.stats);
}

TEST(CliParse, AllOptions)
{
    CliOptions options = parse(
        {"-t", "2", "-f", "cswitch", "-s", "64", "--commit", "lowest",
         "--rename", "scoreboard", "--no-bypass", "--cache-ways", "1",
         "--cache-size", "4096", "--cache-partitions", "2",
         "--btb-banks", "2", "--finite-icache", "--max-cycles",
         "1234", "--align", "--trace", "--stats", "prog.s"});
    ASSERT_TRUE(options.ok) << options.error;
    EXPECT_EQ(options.config.numThreads, 2u);
    EXPECT_EQ(options.config.fetchPolicy,
              FetchPolicy::ConditionalSwitch);
    EXPECT_EQ(options.config.suEntries, 64u);
    EXPECT_EQ(options.config.commitPolicy,
              CommitPolicy::LowestBlockOnly);
    EXPECT_EQ(options.config.renameScheme,
              RenameScheme::Scoreboard1Bit);
    EXPECT_FALSE(options.config.bypassing);
    EXPECT_EQ(options.config.dcache.ways, 1u);
    EXPECT_EQ(options.config.dcache.sizeBytes, 4096u);
    EXPECT_EQ(options.config.dcache.partitions, 2u);
    EXPECT_EQ(options.config.btbBanks, 2u);
    EXPECT_FALSE(options.config.perfectICache);
    EXPECT_EQ(options.config.maxCycles, 1234u);
    EXPECT_TRUE(options.align);
    EXPECT_TRUE(options.trace);
    EXPECT_TRUE(options.stats);
}

TEST(CliParse, WeightedPolicyWithWeights)
{
    CliOptions options =
        parse({"-f", "weightedrr", "-w", "4,2,1,1", "prog.s"});
    ASSERT_TRUE(options.ok) << options.error;
    EXPECT_EQ(options.config.fetchPolicy,
              FetchPolicy::WeightedRoundRobin);
    EXPECT_EQ(options.config.fetchWeights,
              (std::vector<unsigned>{4, 2, 1, 1}));
}

TEST(CliParse, Errors)
{
    EXPECT_FALSE(parse({}).ok);
    EXPECT_FALSE(parse({"-t"}).ok);
    EXPECT_FALSE(parse({"-t", "nope", "prog.s"}).ok);
    EXPECT_FALSE(parse({"-t", "99", "prog.s"}).ok);
    EXPECT_FALSE(parse({"-f", "bogus", "prog.s"}).ok);
    EXPECT_FALSE(parse({"--commit", "sideways", "prog.s"}).ok);
    EXPECT_FALSE(parse({"--what", "prog.s"}).ok);
    EXPECT_FALSE(parse({"a.s", "b.s"}).ok);
    EXPECT_FALSE(parse({"-w", "1,x", "prog.s"}).ok);
    EXPECT_FALSE(parse({"--timeout", "-1", "prog.s"}).ok);
    EXPECT_FALSE(parse({"--timeout", "fast", "prog.s"}).ok);
    EXPECT_FALSE(parse({"--timeout"}).ok);
}

TEST(CliParse, Timeout)
{
    EXPECT_EQ(parse({"prog.s"}).timeoutSeconds, 0.0);
    CliOptions options = parse({"--timeout", "2.5", "prog.s"});
    ASSERT_TRUE(options.ok) << options.error;
    EXPECT_EQ(options.timeoutSeconds, 2.5);
}

TEST(CliParse, UsageMentionsEveryOption)
{
    std::string usage = cliUsage();
    for (const char *token :
         {"-t", "-f", "-s", "-w", "--commit", "--rename",
          "--no-bypass", "--cache-ways", "--cache-partitions",
          "--btb-banks", "--finite-icache", "--max-cycles",
          "--timeout", "--align", "--trace", "--trace-file",
          "--trace-json", "--stats", "--disasm"}) {
        EXPECT_NE(usage.find(token), std::string::npos) << token;
    }
}

TEST(CliParse, TracePaths)
{
    CliOptions options = parse({"--trace-file", "t.txt",
                                "--trace-json", "t.json", "prog.s"});
    ASSERT_TRUE(options.ok) << options.error;
    EXPECT_EQ(options.traceFile, "t.txt");
    EXPECT_EQ(options.traceJson, "t.json");
    EXPECT_FALSE(options.trace);
    EXPECT_FALSE(parse({"--trace-file"}).ok);
    EXPECT_FALSE(parse({"--trace-json"}).ok);
}

TEST_F(CliFile, RunsProgramAndReports)
{
    CliOptions options = parse({"-t", "2", path.c_str()});
    ASSERT_TRUE(options.ok);
    std::ostringstream out, trace;
    int rc = runCli(options, out, trace);
    EXPECT_EQ(rc, 0);
    std::string text = out.str();
    EXPECT_NE(text.find("finished  : yes"), std::string::npos);
    EXPECT_NE(text.find("thread 1"), std::string::npos);
}

TEST_F(CliFile, StatsAndTrace)
{
    CliOptions options =
        parse({"--stats", "--trace", path.c_str()});
    ASSERT_TRUE(options.ok);
    options.config.numThreads = 1;
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 0);
    EXPECT_NE(out.str().find("sim.cycles"), std::string::npos);
    EXPECT_NE(trace.str().find("fetch:"), std::string::npos);
}

TEST_F(CliFile, StatsIncludeAttributionAndHistograms)
{
    CliOptions options = parse({"--stats", path.c_str()});
    ASSERT_TRUE(options.ok);
    options.config.numThreads = 2;
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 0);
    std::string text = out.str();
    EXPECT_NE(text.find("stall.total.active"), std::string::npos);
    EXPECT_NE(text.find("stall.thread1.done"), std::string::npos);
    EXPECT_NE(text.find("histogram latency.fetchToCommit"),
              std::string::npos);
}

TEST_F(CliFile, TraceFileMatchesTraceStream)
{
    std::string trace_path = ::testing::TempDir() + "cli_trace.txt";
    CliOptions options =
        parse({"--trace", "--trace-file", trace_path.c_str(),
               path.c_str()});
    ASSERT_TRUE(options.ok) << options.error;
    options.config.numThreads = 2;
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 0);

    std::ifstream file(trace_path);
    ASSERT_TRUE(file.is_open());
    std::ostringstream from_file;
    from_file << file.rdbuf();
    EXPECT_EQ(from_file.str(), trace.str());
    EXPECT_NE(from_file.str().find("fetch: tid="), std::string::npos);
    std::remove(trace_path.c_str());
}

TEST_F(CliFile, TraceJsonIsWellFormed)
{
    std::string json_path = ::testing::TempDir() + "cli_trace.json";
    CliOptions options =
        parse({"--trace-json", json_path.c_str(), path.c_str()});
    ASSERT_TRUE(options.ok) << options.error;
    options.config.numThreads = 2;
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 0);
    // The JSON path must not leak anything onto the text stream.
    EXPECT_EQ(trace.str(), "");

    std::ifstream file(json_path);
    ASSERT_TRUE(file.is_open());
    std::string first, line, last_nonempty;
    ASSERT_TRUE(std::getline(file, first));
    EXPECT_EQ(first, "[");
    unsigned records = 0;
    while (std::getline(file, line)) {
        if (!line.empty())
            last_nonempty = line;
        if (line.find("\"ph\":") != std::string::npos)
            ++records;
    }
    EXPECT_EQ(last_nonempty, "]");
    EXPECT_GT(records, 4u);
    std::remove(json_path.c_str());
}

TEST_F(CliFile, UnwritableTracePathFails)
{
    CliOptions options = parse(
        {"--trace-json", "/nonexistent/dir/t.json", path.c_str()});
    ASSERT_TRUE(options.ok);
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 1);
    EXPECT_NE(out.str().find("cannot open"), std::string::npos);
}

TEST_F(CliFile, DisasmOnly)
{
    CliOptions options = parse({"--disasm", path.c_str()});
    ASSERT_TRUE(options.ok);
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 0);
    EXPECT_NE(out.str().find("TID r2"), std::string::npos);
    EXPECT_EQ(out.str().find("cycles"), std::string::npos);
}

TEST_F(CliFile, AlignedRunMatchesPlainResult)
{
    std::ostringstream plain_out, aligned_out, trace;
    CliOptions plain = parse({path.c_str()});
    plain.config.numThreads = 1;
    CliOptions aligned = parse({"--align", path.c_str()});
    aligned.config.numThreads = 1;
    EXPECT_EQ(runCli(plain, plain_out, trace), 0);
    EXPECT_EQ(runCli(aligned, aligned_out, trace), 0);
    // Same committed-instruction count modulo the padding NOPs is not
    // guaranteed, but both must finish.
    EXPECT_NE(plain_out.str().find("finished  : yes"),
              std::string::npos);
    EXPECT_NE(aligned_out.str().find("finished  : yes"),
              std::string::npos);
}

TEST_F(CliFile, MissingFileReportsError)
{
    CliOptions options = parse({"/nonexistent/path.s"});
    ASSERT_TRUE(options.ok);
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 1);
    EXPECT_NE(out.str().find("cannot open"), std::string::npos);
}

TEST_F(CliFile, RegisterBudgetChecked)
{
    std::string wide = ::testing::TempDir() + "cli_wide.s";
    std::ofstream file(wide);
    file << "ldi r100, 1\nhalt\n";
    file.close();

    CliOptions options = parse({"-t", "4", wide.c_str()});
    ASSERT_TRUE(options.ok);
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 1);
    EXPECT_NE(out.str().find("allow only"), std::string::npos);
}

TEST_F(CliFile, CycleCapReturnsDistinctCode)
{
    std::string spin = ::testing::TempDir() + "cli_spin.s";
    std::ofstream file(spin);
    file << "forever:\nj forever\n";
    file.close();

    CliOptions options =
        parse({"--max-cycles", "200", spin.c_str()});
    ASSERT_TRUE(options.ok);
    options.config.numThreads = 1;
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 2);
    EXPECT_NE(out.str().find("NO (cycle cap)"), std::string::npos);
}

TEST_F(CliFile, WallClockTimeoutReturnsDistinctCode)
{
    std::string spin = ::testing::TempDir() + "cli_spin_wall.s";
    std::ofstream file(spin);
    file << "forever:\nj forever\n";
    file.close();

    // The deadline is already expired when the run starts, so the
    // watchdog fires at the first slice boundary, deterministically.
    CliOptions options =
        parse({"--timeout", "0.000000001", spin.c_str()});
    ASSERT_TRUE(options.ok) << options.error;
    options.config.numThreads = 1;
    std::ostringstream out, trace;
    EXPECT_EQ(runCli(options, out, trace), 3);
    EXPECT_NE(out.str().find("NO (wall-clock timeout)"),
              std::string::npos);

    // A generous budget must not change the result of a finishing
    // run: the deadline path steps the same cycle sequence.
    CliOptions plain = parse({path.c_str()});
    CliOptions budgeted = parse({"--timeout", "600", path.c_str()});
    std::ostringstream plain_out, budgeted_out;
    EXPECT_EQ(runCli(plain, plain_out, trace), 0);
    EXPECT_EQ(runCli(budgeted, budgeted_out, trace), 0);
    EXPECT_EQ(plain_out.str(), budgeted_out.str());
}

} // namespace
} // namespace sdsp

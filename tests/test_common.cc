/**
 * @file
 * Unit tests for the RNG, stats registry and table formatter.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats_registry.hh"
#include "common/table.hh"

namespace sdsp
{
namespace
{

TEST(Xorshift64, DeterministicForSeed)
{
    Xorshift64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift64, DifferentSeedsDiffer)
{
    Xorshift64 a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Xorshift64, ZeroSeedRemapped)
{
    Xorshift64 a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(Xorshift64, DoubleInUnitInterval)
{
    Xorshift64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        double value = rng.nextDouble();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Xorshift64, RangedDoubleInRange)
{
    Xorshift64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        double value = rng.nextDouble(-3.0, 5.0);
        EXPECT_GE(value, -3.0);
        EXPECT_LT(value, 5.0);
    }
}

TEST(Xorshift64, BelowRespectsBound)
{
    Xorshift64 rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(StatsRegistry, AddAndGet)
{
    StatsRegistry registry;
    registry.add("a", 1.5);
    registry.add("pre", "b", 2.5);
    EXPECT_DOUBLE_EQ(registry.get("a"), 1.5);
    EXPECT_DOUBLE_EQ(registry.get("pre.b"), 2.5);
    EXPECT_TRUE(registry.has("a"));
    EXPECT_FALSE(registry.has("missing"));
}

TEST(StatsRegistry, PreservesInsertionOrder)
{
    StatsRegistry registry;
    registry.add("z", 1);
    registry.add("a", 2);
    ASSERT_EQ(registry.entries().size(), 2u);
    EXPECT_EQ(registry.entries()[0].name, "z");
    EXPECT_EQ(registry.entries()[1].name, "a");
}

TEST(StatsRegistry, GetMissingIsFatal)
{
    StatsRegistry registry;
    EXPECT_EXIT(registry.get("nope"),
                ::testing::ExitedWithCode(1), "no statistic");
}

TEST(Distribution, BucketBoundaries)
{
    // Bucket 0 holds exactly 0; bucket b >= 1 holds
    // [2^(b-1), 2^b - 1].
    EXPECT_EQ(Distribution::bucketOf(0), 0u);
    EXPECT_EQ(Distribution::bucketOf(1), 1u);
    EXPECT_EQ(Distribution::bucketOf(2), 2u);
    EXPECT_EQ(Distribution::bucketOf(3), 2u);
    EXPECT_EQ(Distribution::bucketOf(4), 3u);
    EXPECT_EQ(Distribution::bucketOf(7), 3u);
    EXPECT_EQ(Distribution::bucketOf(8), 4u);
    EXPECT_EQ(Distribution::bucketOf(~std::uint64_t{0}), 64u);

    for (unsigned b = 0; b < Distribution::kBuckets; ++b) {
        EXPECT_EQ(Distribution::bucketOf(Distribution::bucketLo(b)),
                  b);
        EXPECT_EQ(Distribution::bucketOf(Distribution::bucketHi(b)),
                  b);
    }
    EXPECT_EQ(Distribution::bucketLo(0), 0u);
    EXPECT_EQ(Distribution::bucketHi(0), 0u);
    EXPECT_EQ(Distribution::bucketLo(1), 1u);
    EXPECT_EQ(Distribution::bucketHi(1), 1u);
    EXPECT_EQ(Distribution::bucketHi(64), ~std::uint64_t{0});
}

TEST(Distribution, EmptyIsAllZero)
{
    Distribution dist;
    EXPECT_EQ(dist.count(), 0u);
    EXPECT_EQ(dist.sum(), 0u);
    EXPECT_EQ(dist.min(), 0u);
    EXPECT_EQ(dist.max(), 0u);
    EXPECT_DOUBLE_EQ(dist.mean(), 0.0);
    for (unsigned b = 0; b < Distribution::kBuckets; ++b)
        EXPECT_EQ(dist.bucketCount(b), 0u);
}

TEST(Distribution, SamplesLandInTheirBuckets)
{
    Distribution dist;
    dist.sample(0);
    dist.sample(1);
    dist.sample(3);
    dist.sample(3);
    dist.sample(1024);
    EXPECT_EQ(dist.count(), 5u);
    EXPECT_EQ(dist.sum(), 1031u);
    EXPECT_EQ(dist.min(), 0u);
    EXPECT_EQ(dist.max(), 1024u);
    EXPECT_DOUBLE_EQ(dist.mean(), 1031.0 / 5.0);
    EXPECT_EQ(dist.bucketCount(0), 1u); // {0}
    EXPECT_EQ(dist.bucketCount(1), 1u); // {1}
    EXPECT_EQ(dist.bucketCount(2), 2u); // [2, 3]
    EXPECT_EQ(dist.bucketCount(11), 1u); // [1024, 2047]
    EXPECT_EQ(dist.bucketCount(12), 0u);
    EXPECT_EQ(dist.bucketCount(Distribution::kBuckets + 5), 0u);
}

TEST(Distribution, ExtremeValues)
{
    Distribution dist;
    dist.sample(~std::uint64_t{0});
    EXPECT_EQ(dist.bucketCount(64), 1u);
    EXPECT_EQ(dist.min(), ~std::uint64_t{0});
    EXPECT_EQ(dist.max(), ~std::uint64_t{0});
}

TEST(StatsRegistry, Distributions)
{
    StatsRegistry registry;
    EXPECT_FALSE(registry.hasDistribution("lat"));

    Distribution dist;
    dist.sample(4);
    dist.sample(9);
    registry.addDistribution("lat", dist);

    ASSERT_TRUE(registry.hasDistribution("lat"));
    EXPECT_EQ(registry.getDistribution("lat").count(), 2u);
    ASSERT_EQ(registry.distributions().size(), 1u);
    EXPECT_EQ(registry.distributions()[0].name, "lat");

    std::string text = registry.toString();
    EXPECT_NE(text.find("histogram lat:"), std::string::npos);
    EXPECT_NE(text.find("count=2"), std::string::npos);
}

TEST(StatsRegistry, GetMissingDistributionIsFatal)
{
    StatsRegistry registry;
    EXPECT_EXIT(registry.getDistribution("nope"),
                ::testing::ExitedWithCode(1), "no histogram");
}

TEST(Table, AsciiAlignsColumns)
{
    Table table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::string out = table.toAscii();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CellBuilders)
{
    Table table({"a", "b", "c"});
    table.beginRow();
    table.cell("text");
    table.cell(3.14159, 2);
    table.cell(std::uint64_t{42});
    std::string csv = table.toCsv();
    EXPECT_NE(csv.find("text,3.14,42"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    Table table({"a"});
    table.addRow({"has,comma"});
    table.addRow({"has\"quote"});
    std::string csv = table.toCsv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, ArityMismatchIsFatal)
{
    Table table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only one"}), "arity");
}

TEST(Table, RowsCounted)
{
    Table table({"a"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rows(), 2u);
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Unit tests for the RNG, stats registry and table formatter.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats_registry.hh"
#include "common/table.hh"

namespace sdsp
{
namespace
{

TEST(Xorshift64, DeterministicForSeed)
{
    Xorshift64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift64, DifferentSeedsDiffer)
{
    Xorshift64 a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Xorshift64, ZeroSeedRemapped)
{
    Xorshift64 a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(Xorshift64, DoubleInUnitInterval)
{
    Xorshift64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        double value = rng.nextDouble();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Xorshift64, RangedDoubleInRange)
{
    Xorshift64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        double value = rng.nextDouble(-3.0, 5.0);
        EXPECT_GE(value, -3.0);
        EXPECT_LT(value, 5.0);
    }
}

TEST(Xorshift64, BelowRespectsBound)
{
    Xorshift64 rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(StatsRegistry, AddAndGet)
{
    StatsRegistry registry;
    registry.add("a", 1.5);
    registry.add("pre", "b", 2.5);
    EXPECT_DOUBLE_EQ(registry.get("a"), 1.5);
    EXPECT_DOUBLE_EQ(registry.get("pre.b"), 2.5);
    EXPECT_TRUE(registry.has("a"));
    EXPECT_FALSE(registry.has("missing"));
}

TEST(StatsRegistry, PreservesInsertionOrder)
{
    StatsRegistry registry;
    registry.add("z", 1);
    registry.add("a", 2);
    ASSERT_EQ(registry.entries().size(), 2u);
    EXPECT_EQ(registry.entries()[0].name, "z");
    EXPECT_EQ(registry.entries()[1].name, "a");
}

TEST(StatsRegistry, GetMissingIsFatal)
{
    StatsRegistry registry;
    EXPECT_EXIT(registry.get("nope"),
                ::testing::ExitedWithCode(1), "no statistic");
}

TEST(Table, AsciiAlignsColumns)
{
    Table table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::string out = table.toAscii();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CellBuilders)
{
    Table table({"a", "b", "c"});
    table.beginRow();
    table.cell("text");
    table.cell(3.14159, 2);
    table.cell(std::uint64_t{42});
    std::string csv = table.toCsv();
    EXPECT_NE(csv.find("text,3.14,42"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    Table table({"a"});
    table.addRow({"has,comma"});
    table.addRow({"has\"quote"});
    std::string csv = table.toCsv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, ArityMismatchIsFatal)
{
    Table table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only one"}), "arity");
}

TEST(Table, RowsCounted)
{
    Table table({"a"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rows(), 2u);
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Tests for the fuzzing subsystem: generator determinism and
 * validity, the differential checker's oracles (including contained
 * architectural faults), the minimizer, and the `.s` repro emitter's
 * assemble round trip.
 */

#include <string>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "asm/builder.hh"
#include "fuzz/differential.hh"
#include "fuzz/generator.hh"
#include "fuzz/minimize.hh"
#include "isa/interpreter.hh"
#include "isa/opcode.hh"

namespace sdsp
{
namespace
{

MachineConfig
fuzzConfig(unsigned threads)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    return cfg;
}

TEST(FuzzGenerator, DeterministicInSeedAndShape)
{
    FuzzShape shape = FuzzShape::preset("smoke");
    Program a = generateProgram(shape, 12345);
    Program b = generateProgram(shape, 12345);
    EXPECT_EQ(a.code, b.code);
    EXPECT_EQ(a.memorySize, b.memorySize);
    EXPECT_EQ(a.entry, b.entry);

    Program c = generateProgram(shape, 12346);
    EXPECT_NE(a.code, c.code);
}

TEST(FuzzGenerator, AllPresetsNamed)
{
    for (const std::string &name : FuzzShape::presetNames()) {
        FuzzShape shape = FuzzShape::preset(name);
        EXPECT_EQ(shape.name, name);
        Program prog = generateProgram(shape, 7);
        EXPECT_FALSE(prog.code.empty());
    }
}

TEST(FuzzDifferential, GeneratedProgramsPassAllOracles)
{
    // A small sweep across shapes, seeds, and machine shapes; any
    // failure here is a generator, analyzer, or pipeline bug.
    const unsigned threads[] = {1, 2, 4, 8};
    std::uint64_t seed = 1000;
    for (const std::string &name : FuzzShape::presetNames()) {
        FuzzShape shape = FuzzShape::preset(name);
        for (unsigned t : threads) {
            DiffResult result =
                runDifferential(generateProgram(shape, ++seed),
                                fuzzConfig(t));
            EXPECT_TRUE(result.ok)
                << "shape " << name << " threads " << t << ": "
                << result.kind << " (" << result.detail << ")";
        }
    }
}

TEST(FuzzDifferential, IpcBoundIsPopulatedOnPass)
{
    DiffResult result = runDifferential(
        generateProgram(FuzzShape::preset("smoke"), 9), fuzzConfig(4));
    ASSERT_TRUE(result.ok) << result.kind;
    EXPECT_GT(result.ipcBound, 0.0);
    EXPECT_LE(result.sim.ipc(), result.ipcBound + 1e-9);
}

TEST(FuzzDifferential, ArchFaultIsContained)
{
    // A misaligned load must be a reportable interpreter fault, not a
    // process abort (minimization candidates are not valid programs).
    ProgramBuilder b;
    b.dword("pad", 0);
    b.ldi(1, 1);
    b.ld(2, 0, 1); // address 1: misaligned
    b.halt();
    Program prog = b.finish();

    Interpreter interp(prog, 1);
    interp.run();
    EXPECT_TRUE(interp.finished());
    EXPECT_TRUE(interp.anyFaulted());
    EXPECT_TRUE(interp.faulted(0));
    EXPECT_NE(interp.faultMessage().find("load"), std::string::npos);
}

TEST(FuzzMinimize, ShrinksWhilePreservingKind)
{
    Program prog = generateProgram(FuzzShape::preset("smoke"), 4242);

    // Synthetic monotone failure: "program still contains a store".
    FailureClassifier has_store = [](const Program &p) {
        for (InstWord word : p.code) {
            if (Instruction::decode(word).isStore())
                return std::string("contains-store");
        }
        return std::string();
    };
    ASSERT_EQ(has_store(prog), "contains-store");

    MinimizeResult result =
        minimizeProgram(prog, "contains-store", has_store);
    EXPECT_EQ(has_store(result.program), "contains-store");
    EXPECT_EQ(result.originalInsts, prog.code.size());
    EXPECT_LT(result.minimizedInsts, result.originalInsts);
    EXPECT_GE(result.rounds, 1u);
    // The epilogue alone has many stores; a single one (plus HALTs)
    // should survive.
    EXPECT_LE(result.minimizedInsts, 8u);
}

TEST(FuzzMinimize, AssemblyRoundTripIsExact)
{
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        Program prog =
            generateProgram(FuzzShape::preset("branchy"), seed);
        std::string source =
            programToAssembly(prog, "round-trip test");
        Program back = assemble(source).program;
        EXPECT_EQ(back.code, prog.code) << "seed " << seed;
        EXPECT_EQ(back.memorySize, prog.memorySize)
            << "seed " << seed;
    }
}

TEST(FuzzMinimize, MinimizedProgramStillAssembles)
{
    Program prog = generateProgram(FuzzShape::preset("loopy"), 99);
    FailureClassifier has_branch = [](const Program &p) {
        for (InstWord word : p.code) {
            if (Instruction::decode(word).isCondBranch())
                return std::string("contains-branch");
        }
        return std::string();
    };
    MinimizeResult result =
        minimizeProgram(prog, "contains-branch", has_branch);
    std::string source =
        programToAssembly(result.program, "minimized");
    Program back = assemble(source).program;
    EXPECT_EQ(back.code, result.program.code);
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Tests for the binary-rewriting layout pass (realignProgram).
 */

#include <gtest/gtest.h>

#include "asm/rewrite.hh"
#include "isa/interpreter.hh"
#include "workloads/workload.hh"

namespace sdsp
{
namespace
{

LayoutOptions
bothPasses()
{
    LayoutOptions layout;
    layout.alignTargetsToBlocks = true;
    layout.alignBranchesToBlockEnd = true;
    return layout;
}

TEST(Rewrite, PreservesSemanticsOfLoop)
{
    ProgramBuilder b;
    b.dword("out", 0);
    b.la(3, "out");
    b.ldi(1, 25);
    b.label("top");
    b.add(2, 2, 1);
    b.addi(1, 1, -1);
    b.bne(1, 0, "top");
    b.st(2, 0, 3);
    b.halt();
    Program original = b.finish();
    Program realigned = realignProgram(original, bothPasses());

    // Control transfers sit at block ends.
    for (std::size_t pc = 0; pc < realigned.code.size(); ++pc) {
        Instruction inst = Instruction::decode(realigned.code[pc]);
        if (inst.isControl()) {
            EXPECT_EQ(pc % 4, 3u) << "pc " << pc;
        }
    }

    Interpreter plain(original, 1);
    Interpreter padded(realigned, 1);
    ASSERT_TRUE(plain.run());
    ASSERT_TRUE(padded.run());
    EXPECT_EQ(plain.memory(), padded.memory());
    EXPECT_EQ(readWord(plain.memory(), 0), 325u);
}

TEST(Rewrite, PreservesDataSection)
{
    ProgramBuilder b;
    b.dword("a", 0x1234);
    b.dvalue("pi", 3.5);
    b.halt();
    Program original = b.finish(64);
    Program realigned = realignProgram(original, bothPasses());
    EXPECT_EQ(realigned.data, original.data);
    EXPECT_EQ(realigned.memorySize, original.memorySize);
}

TEST(Rewrite, RejectsLinkInstructions)
{
    ProgramBuilder b;
    b.jal(5, "f");
    b.label("f");
    b.halt();
    Program prog = b.finish();
    EXPECT_EXIT(realignProgram(prog, bothPasses()),
                ::testing::ExitedWithCode(1), "code address");
}

TEST(Rewrite, RejectsIndirectJumps)
{
    ProgramBuilder b;
    b.jr(5);
    b.halt();
    Program prog = b.finish();
    EXPECT_EXIT(realignProgram(prog, bothPasses()),
                ::testing::ExitedWithCode(1), "code address");
}

TEST(Rewrite, EveryBenchmarkSurvivesRealignment)
{
    // The paper's section 6.1 layout optimization must preserve all
    // eleven benchmarks' results.
    for (const Workload *workload : allWorkloads()) {
        WorkloadImage image = workload->build(2, 10);
        Program realigned = realignProgram(image.program, bothPasses());
        EXPECT_GT(realigned.code.size(), image.program.code.size())
            << workload->name();

        Interpreter interp(realigned, 2);
        ASSERT_TRUE(interp.run()) << workload->name();
        MainMemory mem;
        mem.loadProgram(realigned);
        mem.image() = interp.memory();
        VerifyResult verdict = image.verify(mem);
        EXPECT_TRUE(verdict.ok)
            << workload->name() << ": " << verdict.message;
    }
}

TEST(Rewrite, TargetsAlignedToBlocks)
{
    LayoutOptions targets_only;
    targets_only.alignTargetsToBlocks = true;

    ProgramBuilder b;
    b.nop();
    b.nop();
    b.label("t");
    b.addi(1, 1, 1);
    b.slti(2, 1, 3);
    b.bne(2, 0, "t");
    b.halt();
    Program realigned = realignProgram(b.finish(), targets_only);

    // Find the branch; its target must be block-aligned.
    for (std::size_t pc = 0; pc < realigned.code.size(); ++pc) {
        Instruction inst = Instruction::decode(realigned.code[pc]);
        if (inst.isCondBranch()) {
            InstAddr target =
                inst.staticTarget(static_cast<InstAddr>(pc));
            EXPECT_EQ(target % 4, 0u);
        }
    }
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Benchmark-suite tests: every workload, at every thread count the
 * paper simulates (1-6), must (a) verify against its C++ reference on
 * the functional interpreter, (b) verify on the cycle-level pipeline,
 * and (c) produce the same final memory image on both — the strongest
 * end-to-end cross-check of the pipeline's architectural correctness.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "isa/interpreter.hh"
#include "workloads/emit_util.hh"
#include "workloads/workload.hh"

namespace sdsp
{
namespace
{

/** Small problem sizes keep the full 66-case sweep fast. */
constexpr unsigned kTestScale = 12;

struct SuiteParam
{
    std::string name;
    unsigned threads;
};

void
PrintTo(const SuiteParam &param, std::ostream *os)
{
    *os << param.name << "x" << param.threads;
}

class WorkloadSweep : public ::testing::TestWithParam<SuiteParam>
{
};

TEST_P(WorkloadSweep, InterpreterMatchesReference)
{
    const Workload &workload = workloadByName(GetParam().name);
    unsigned threads = GetParam().threads;
    WorkloadImage image = workload.build(threads, kTestScale);

    Interpreter interp(image.program, threads);
    ASSERT_TRUE(interp.run()) << "interpreter did not terminate";

    MainMemory mem;
    mem.loadProgram(image.program);
    mem.image() = interp.memory();
    VerifyResult verdict = image.verify(mem);
    EXPECT_TRUE(verdict.ok) << verdict.message;
}

TEST_P(WorkloadSweep, PipelineMatchesReferenceAndInterpreter)
{
    const Workload &workload = workloadByName(GetParam().name);
    unsigned threads = GetParam().threads;
    WorkloadImage image = workload.build(threads, kTestScale);

    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.maxCycles = 20'000'000;
    Processor cpu(cfg, image.program);
    ASSERT_TRUE(cpu.run().finished) << "pipeline hit the cycle cap";

    VerifyResult verdict = image.verify(cpu.memory());
    EXPECT_TRUE(verdict.ok) << verdict.message;

    Interpreter interp(image.program, threads);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(cpu.memory().image(), interp.memory())
        << "pipeline and interpreter disagree on final memory";
}

std::vector<SuiteParam>
sweepParams()
{
    std::vector<SuiteParam> params;
    for (const Workload *workload : allWorkloads()) {
        for (unsigned threads = 1; threads <= 6; ++threads)
            params.push_back({workload->name(), threads});
    }
    return params;
}

std::string
sweepName(const ::testing::TestParamInfo<SuiteParam> &info)
{
    return info.param.name + "_" +
           std::to_string(info.param.threads) + "t";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadSweep,
                         ::testing::ValuesIn(sweepParams()), sweepName);

// ---- Configuration-matrix sweep ------------------------------------
// Every benchmark must verify on the pipeline under every design
// variant the paper (or an ablation) exercises.

struct VariantParam
{
    std::string benchmark;
    std::string variant;
};

void
PrintTo(const VariantParam &param, std::ostream *os)
{
    *os << param.benchmark << "/" << param.variant;
}

MachineConfig
variantConfig(const std::string &variant)
{
    MachineConfig cfg;
    cfg.numThreads = 4;
    cfg.maxCycles = 20'000'000;
    if (variant == "enhancedFu") {
        cfg.fu = FuConfig::sdspEnhanced();
    } else if (variant == "directCache") {
        cfg.dcache.ways = 1;
    } else if (variant == "su16") {
        cfg.suEntries = 16;
    } else if (variant == "su64") {
        cfg.suEntries = 64;
    } else if (variant == "lowestCommit") {
        cfg.commitPolicy = CommitPolicy::LowestBlockOnly;
    } else if (variant == "scoreboard") {
        cfg.renameScheme = RenameScheme::Scoreboard1Bit;
    } else if (variant == "noBypass") {
        cfg.bypassing = false;
    } else if (variant == "maskedRR") {
        cfg.fetchPolicy = FetchPolicy::MaskedRoundRobin;
    } else if (variant == "cswitch") {
        cfg.fetchPolicy = FetchPolicy::ConditionalSwitch;
    } else if (variant == "adaptive") {
        cfg.fetchPolicy = FetchPolicy::Adaptive;
    } else if (variant == "weightedRR") {
        cfg.fetchPolicy = FetchPolicy::WeightedRoundRobin;
        cfg.fetchWeights = {2, 1, 1, 2};
    } else if (variant == "partitionedCache") {
        cfg.dcache.partitions = 4;
    } else if (variant == "privateBtb") {
        cfg.btbBanks = 4;
    } else if (variant == "finiteICache") {
        cfg.perfectICache = false;
    } else if (variant != "default") {
        ADD_FAILURE() << "unknown variant " << variant;
    }
    return cfg;
}

class ConfigMatrix : public ::testing::TestWithParam<VariantParam>
{
};

TEST_P(ConfigMatrix, BenchmarkVerifiesOnPipeline)
{
    const VariantParam &param = GetParam();
    MachineConfig cfg = variantConfig(param.variant);
    WorkloadImage image =
        workloadByName(param.benchmark).build(cfg.numThreads,
                                              kTestScale);
    Processor cpu(cfg, image.program);
    ASSERT_TRUE(cpu.run().finished) << "cycle cap";
    VerifyResult verdict = image.verify(cpu.memory());
    EXPECT_TRUE(verdict.ok) << verdict.message;
}

std::vector<VariantParam>
matrixParams()
{
    const char *variants[] = {
        "default",      "enhancedFu",  "directCache", "su16",
        "su64",         "lowestCommit", "scoreboard", "noBypass",
        "maskedRR",     "cswitch",     "adaptive",    "weightedRR",
        "partitionedCache", "privateBtb", "finiteICache",
    };
    std::vector<VariantParam> params;
    for (const Workload *workload : allWorkloads()) {
        for (const char *variant : variants)
            params.push_back({workload->name(), variant});
    }
    return params;
}

std::string
matrixName(const ::testing::TestParamInfo<VariantParam> &info)
{
    return info.param.benchmark + "_" + info.param.variant;
}

INSTANTIATE_TEST_SUITE_P(DesignSpace, ConfigMatrix,
                         ::testing::ValuesIn(matrixParams()),
                         matrixName);

TEST(WorkloadSuite, RegistryHasElevenBenchmarks)
{
    EXPECT_EQ(allWorkloads().size(), 11u);
    EXPECT_EQ(workloadsInGroup(BenchmarkGroup::LivermoreLoops).size(),
              6u);
    EXPECT_EQ(workloadsInGroup(BenchmarkGroup::GroupII).size(), 5u);
}

TEST(WorkloadSuite, ExtensionWorkloadsAreSeparate)
{
    EXPECT_GE(extensionWorkloads().size(), 1u);
    EXPECT_EQ(workloadByName("LL5sched").name(), "LL5sched");
    // Extensions never appear in the paper's eleven.
    for (const Workload *workload : allWorkloads())
        EXPECT_NE(workload->name(), "LL5sched");
}

TEST(WorkloadSuite, Ll5SchedMatchesLl5Semantics)
{
    // Both formulations compute the same recurrence on the same data;
    // either verifier must accept the other's output.
    for (unsigned threads : {1u, 4u}) {
        WorkloadImage sched =
            workloadByName("LL5sched").build(threads, kTestScale);
        Interpreter interp(sched.program, threads);
        ASSERT_TRUE(interp.run());
        MainMemory mem;
        mem.loadProgram(sched.program);
        mem.image() = interp.memory();
        VerifyResult verdict = sched.verify(mem);
        EXPECT_TRUE(verdict.ok) << verdict.message;
    }
}

TEST(WorkloadSuite, Ll5SchedVerifiesOnPipeline)
{
    MachineConfig cfg;
    cfg.numThreads = 4;
    cfg.maxCycles = 20'000'000;
    WorkloadImage image = workloadByName("LL5sched").build(4, kTestScale);
    Processor cpu(cfg, image.program);
    ASSERT_TRUE(cpu.run().finished);
    VerifyResult verdict = image.verify(cpu.memory());
    EXPECT_TRUE(verdict.ok) << verdict.message;
}

TEST(WorkloadSuite, LookupByName)
{
    EXPECT_EQ(workloadByName("Water").name(), "Water");
    EXPECT_EQ(workloadByName("LL7").group(),
              BenchmarkGroup::LivermoreLoops);
    EXPECT_EXIT(workloadByName("bogus"),
                ::testing::ExitedWithCode(1), "no benchmark");
}

TEST(WorkloadSuite, ProgramsRespectSuiteRegisterBudget)
{
    // Every benchmark must fit the 6-thread partition (21 registers).
    for (const Workload *workload : allWorkloads()) {
        WorkloadImage image = workload->build(6, kTestScale);
        for (InstWord word : image.program.code) {
            Instruction inst = Instruction::decode(word);
            if (inst.writesRd()) {
                EXPECT_LT(inst.rd, kSuiteRegisterBudget)
                    << workload->name();
            }
            if (inst.readsRs1()) {
                EXPECT_LT(inst.rs1, kSuiteRegisterBudget)
                    << workload->name();
            }
            if (inst.readsRs2()) {
                EXPECT_LT(inst.rs2, kSuiteRegisterBudget)
                    << workload->name();
            }
        }
    }
}

TEST(WorkloadSuite, VerifiersRejectCorruptedOutput)
{
    // Guards against vacuous verifiers: corrupt one output word and
    // expect the check to fail.
    for (const Workload *workload : allWorkloads()) {
        WorkloadImage image = workload->build(2, kTestScale);
        Interpreter interp(image.program, 2);
        ASSERT_TRUE(interp.run());
        MainMemory mem;
        mem.loadProgram(image.program);
        mem.image() = interp.memory();
        ASSERT_TRUE(image.verify(mem).ok) << workload->name();

        // Flip bits in an output cell. The first data word is an
        // output for most benchmarks; find a word whose corruption
        // the verifier notices.
        bool caught = false;
        for (Addr addr = 0; addr + 8 <= mem.size() && !caught;
             addr += 8) {
            RegVal original = mem.read(addr);
            mem.write(addr, original ^ 0x7ff0000000000001ull);
            caught = !image.verify(mem).ok;
            mem.write(addr, original);
        }
        EXPECT_TRUE(caught) << workload->name()
                            << ": verifier never fails";
    }
}

TEST(WorkloadSuite, ScaleChangesProblemSize)
{
    const Workload &matrix = workloadByName("Matrix");
    WorkloadImage small = matrix.build(1, 20);
    WorkloadImage large = matrix.build(1, 100);
    EXPECT_LT(small.program.memorySize, large.program.memorySize);
}

TEST(WorkloadSuite, Ll5UsesExplicitSynchronization)
{
    // The paper singles out LL5 for its inserted synchronization
    // primitives; its program text must contain SPIN hints.
    WorkloadImage image = workloadByName("LL5").build(4, kTestScale);
    bool has_spin = false;
    for (InstWord word : image.program.code)
        has_spin |= Instruction::decode(word).op == Opcode::SPIN;
    EXPECT_TRUE(has_spin);
}

TEST(WorkloadSuite, WaterUsesFpDivideAndSqrt)
{
    WorkloadImage image = workloadByName("Water").build(4, kTestScale);
    bool has_div = false, has_sqrt = false;
    for (InstWord word : image.program.code) {
        Opcode op = Instruction::decode(word).op;
        has_div |= op == Opcode::FDIV;
        has_sqrt |= op == Opcode::FSQRT;
    }
    EXPECT_TRUE(has_div);
    EXPECT_TRUE(has_sqrt);
}

TEST(WorkloadSuite, GroupsMatchPaperMembership)
{
    auto group_of = [](const std::string &name) {
        return workloadByName(name).group();
    };
    for (const char *name : {"LL1", "LL2", "LL3", "LL5", "LL7", "LL11"})
        EXPECT_EQ(group_of(name), BenchmarkGroup::LivermoreLoops);
    for (const char *name :
         {"Laplace", "MPD", "Matrix", "Sieve", "Water"})
        EXPECT_EQ(group_of(name), BenchmarkGroup::GroupII);
}

} // namespace
} // namespace sdsp

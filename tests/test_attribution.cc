/**
 * @file
 * Tests for top-down stall attribution: the sum-to-total-cycles
 * invariant across the benchmark grid, agreement between the
 * RunResult matrix and the stats registry, and the committed-
 * instruction latency histograms.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "harness/runner.hh"

namespace sdsp
{
namespace
{

struct GridPoint
{
    const char *benchmark;
    unsigned threads;
};

class Attribution : public ::testing::TestWithParam<GridPoint>
{
};

/** A machine for @p threads: the register file scales with the
 *  thread count (32 per thread) so the 8-thread points keep the
 *  per-thread budget the workloads were written against. */
MachineConfig
gridConfig(unsigned threads)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.numRegisters = 32 * threads;
    return cfg;
}

std::string
pointName(const ::testing::TestParamInfo<GridPoint> &info)
{
    return format("%s_%ut", info.param.benchmark,
                  info.param.threads);
}

TEST_P(Attribution, EveryThreadSumsToTotalCycles)
{
    const GridPoint point = GetParam();
    MachineConfig cfg = gridConfig(point.threads);
    RunResult result =
        runWorkload(workloadByName(point.benchmark), cfg,
                    /*scale=*/10);
    ASSERT_TRUE(result.finished);
    ASSERT_TRUE(result.verified) << result.verifyMessage;

    ASSERT_EQ(result.stallCycles.size(), point.threads);
    for (unsigned t = 0; t < point.threads; ++t) {
        std::uint64_t attributed = 0;
        for (unsigned r = 0; r < kNumStallReasons; ++r)
            attributed += result.stallCycles[t][r];
        EXPECT_EQ(attributed, result.cycles)
            << "thread " << t << ": attributed cycles must equal "
            << "total cycles (one charge per cycle)";

        // A finished thread did real work and ended done.
        EXPECT_GT(
            result.stallCycles[t][static_cast<unsigned>(
                StallReason::Active)],
            0u);
    }
}

TEST_P(Attribution, StatsRegistryAgreesWithMatrix)
{
    const GridPoint point = GetParam();
    MachineConfig cfg = gridConfig(point.threads);
    RunResult result =
        runWorkload(workloadByName(point.benchmark), cfg,
                    /*scale=*/10);
    ASSERT_TRUE(result.finished);

    std::uint64_t grand_total = 0;
    for (unsigned r = 0; r < kNumStallReasons; ++r) {
        const char *rn = stallReasonName(static_cast<StallReason>(r));
        std::uint64_t reason_total = 0;
        for (unsigned t = 0; t < point.threads; ++t) {
            std::string key = format("stall.thread%u.%s", t, rn);
            ASSERT_TRUE(result.stats.has(key)) << key;
            EXPECT_DOUBLE_EQ(
                result.stats.get(key),
                static_cast<double>(result.stallCycles[t][r]));
            reason_total += result.stallCycles[t][r];
        }
        std::string total_key = format("stall.total.%s", rn);
        ASSERT_TRUE(result.stats.has(total_key)) << total_key;
        EXPECT_DOUBLE_EQ(result.stats.get(total_key),
                         static_cast<double>(reason_total));
        grand_total += reason_total;
    }
    EXPECT_EQ(grand_total,
              static_cast<std::uint64_t>(result.cycles) *
                  point.threads);
}

TEST_P(Attribution, LatencyHistogramsCoverEveryCommit)
{
    const GridPoint point = GetParam();
    MachineConfig cfg = gridConfig(point.threads);
    RunResult result =
        runWorkload(workloadByName(point.benchmark), cfg,
                    /*scale=*/10);
    ASSERT_TRUE(result.finished);

    for (const char *name :
         {"latency.fetchToDispatch", "latency.dispatchToIssue",
          "latency.issueToComplete", "latency.completeToCommit",
          "latency.fetchToCommit"}) {
        ASSERT_TRUE(result.stats.hasDistribution(name)) << name;
        // One sample per committed instruction, no more, no less.
        EXPECT_EQ(result.stats.getDistribution(name).count(),
                  result.committed)
            << name;
    }

    // End-to-end latency dominates any single stage gap.
    const Distribution &total =
        result.stats.getDistribution("latency.fetchToCommit");
    EXPECT_GE(total.max(),
              result.stats.getDistribution("latency.dispatchToIssue")
                  .max());
    // Issue is at least one cycle after dispatch (earliestIssue).
    EXPECT_GE(
        result.stats.getDistribution("latency.dispatchToIssue").min(),
        1u);
    EXPECT_GT(total.mean(), 0.0);
}

TEST_P(Attribution, Deterministic)
{
    const GridPoint point = GetParam();
    MachineConfig cfg = gridConfig(point.threads);
    RunResult a = runWorkload(workloadByName(point.benchmark), cfg,
                              /*scale=*/10);
    RunResult b = runWorkload(workloadByName(point.benchmark), cfg,
                              /*scale=*/10);
    ASSERT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Attribution,
    ::testing::Values(GridPoint{"LL1", 1}, GridPoint{"LL1", 4},
                      GridPoint{"LL1", 8}, GridPoint{"Matrix", 1},
                      GridPoint{"Matrix", 4}, GridPoint{"Matrix", 8},
                      GridPoint{"Water", 1}, GridPoint{"Water", 4},
                      GridPoint{"Water", 8}),
    pointName);

TEST(Attribution, CycleCapRunStillSumsToTotal)
{
    // The invariant must hold even when the run hits the cycle cap
    // mid-flight (threads are then parked in non-Done reasons).
    MachineConfig cfg;
    cfg.numThreads = 4;
    cfg.maxCycles = 500;
    RunResult result =
        runWorkload(workloadByName("Matrix"), cfg, /*scale=*/10);
    ASSERT_FALSE(result.finished);
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        std::uint64_t attributed = 0;
        for (unsigned r = 0; r < kNumStallReasons; ++r)
            attributed += result.stallCycles[t][r];
        EXPECT_EQ(attributed, result.cycles) << "thread " << t;
    }
}

} // namespace
} // namespace sdsp

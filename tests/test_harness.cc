/**
 * @file
 * Tests for the experiment runner and the paper's speedup formula.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

namespace sdsp
{
namespace
{

TEST(Speedup, PaperFormula)
{
    // speedup = (Mt_perf - St_perf)/St_perf, perf = 1/cycles.
    EXPECT_DOUBLE_EQ(speedupPercent(50, 100), 100.0);
    EXPECT_DOUBLE_EQ(speedupPercent(100, 100), 0.0);
    EXPECT_DOUBLE_EQ(speedupPercent(200, 100), -50.0);
    EXPECT_NEAR(speedupPercent(80, 100), 25.0, 1e-12);
}

TEST(Speedup, ZeroCyclesPanics)
{
    EXPECT_DEATH(speedupPercent(0, 100), "zero-cycle");
}

TEST(Mean, Values)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Runner, RunsAndVerifiesBenchmark)
{
    MachineConfig cfg;
    cfg.numThreads = 2;
    RunResult result =
        runWorkload(workloadByName("Matrix"), cfg, /*scale=*/10);
    EXPECT_TRUE(result.finished);
    EXPECT_TRUE(result.verified) << result.verifyMessage;
    EXPECT_EQ(result.benchmark, "Matrix");
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.committed, 0u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_TRUE(result.stats.has("sim.cycles"));
    EXPECT_DOUBLE_EQ(result.stats.get("sim.cycles"),
                     static_cast<double>(result.cycles));
}

TEST(Runner, ReportsCycleCapAsUnverified)
{
    MachineConfig cfg;
    cfg.numThreads = 4;
    cfg.maxCycles = 50; // far too few
    RunResult result =
        runWorkload(workloadByName("LL1"), cfg, /*scale=*/10);
    EXPECT_FALSE(result.finished);
    EXPECT_FALSE(result.verified);
    EXPECT_EXIT(requireGood(result), ::testing::ExitedWithCode(1),
                "did not finish");
}

TEST(Runner, RequireGoodPassesVerifiedRun)
{
    MachineConfig cfg;
    cfg.numThreads = 1;
    RunResult result =
        runWorkload(workloadByName("Sieve"), cfg, /*scale=*/10);
    requireGood(result); // must not exit
    SUCCEED();
}

TEST(Runner, ThreadCountFlowsIntoWorkloadBuild)
{
    MachineConfig cfg;
    cfg.numThreads = 3;
    RunResult result =
        runWorkload(workloadByName("LL3"), cfg, /*scale=*/10);
    EXPECT_TRUE(result.verified) << result.verifyMessage;
    // Three threads committed work.
    EXPECT_GT(result.stats.get("sim.committed.thread2"), 0.0);
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Unit tests for the multithreaded fetch unit: block formation,
 * speculation, and the four fetch policies.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "branch/predictor_bank.hh"
#include "core/fetch.hh"

namespace sdsp
{
namespace
{

std::vector<Instruction>
decodeAll(const Program &prog)
{
    std::vector<Instruction> out;
    for (InstWord word : prog.code)
        out.push_back(Instruction::decode(word));
    return out;
}

struct FetchFixture
{
    FetchFixture(unsigned threads, FetchPolicy policy,
                 const Program &prog)
        : code(decodeAll(prog)), btb(64, 1)
    {
        cfg.numThreads = threads;
        cfg.fetchPolicy = policy;
        fetch = std::make_unique<FetchUnit>(cfg, code, btb);
    }

    MachineConfig cfg;
    std::vector<Instruction> code;
    PredictorBank btb;
    std::unique_ptr<FetchUnit> fetch;
};

Program
straightLine(unsigned n)
{
    ProgramBuilder b;
    for (unsigned i = 0; i + 1 < n; ++i)
        b.addi(1, 1, 1);
    b.halt();
    return b.finish();
}

TEST(Fetch, FullAlignedBlock)
{
    FetchFixture f(1, FetchPolicy::TrueRoundRobin, straightLine(12));
    auto block = f.fetch->fetchCycle(1);
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(block->tid, 0u);
    ASSERT_EQ(block->insts.size(), 4u);
    EXPECT_EQ(block->insts[0].pc, 0u);
    EXPECT_EQ(block->insts[3].pc, 3u);
    EXPECT_EQ(f.fetch->pcOf(0), 4u);
}

TEST(Fetch, MisalignedEntryWastesLeadingSlots)
{
    FetchFixture f(1, FetchPolicy::TrueRoundRobin, straightLine(12));
    f.fetch->onSquash(0, 6); // resume mid-block
    auto block = f.fetch->fetchCycle(1);
    ASSERT_TRUE(block.has_value());
    ASSERT_EQ(block->insts.size(), 2u); // pc 6 and 7 only
    EXPECT_EQ(block->insts[0].pc, 6u);
    EXPECT_EQ(f.fetch->pcOf(0), 8u);
}

TEST(Fetch, HaltStopsThreadFetch)
{
    FetchFixture f(1, FetchPolicy::TrueRoundRobin, straightLine(2));
    auto block = f.fetch->fetchCycle(1);
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(block->insts.size(), 2u);
    EXPECT_TRUE(block->insts.back().inst.isHalt());
    // Nothing more to fetch until a squash restores the thread.
    EXPECT_FALSE(f.fetch->fetchCycle(2).has_value());
}

TEST(Fetch, DirectJumpRedirectsImmediately)
{
    ProgramBuilder b;
    b.j("target");
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.label("target");
    b.halt();
    FetchFixture f(1, FetchPolicy::TrueRoundRobin, b.finish());
    auto block = f.fetch->fetchCycle(1);
    ASSERT_TRUE(block.has_value());
    // Instructions after the jump in the block are invalid.
    EXPECT_EQ(block->insts.size(), 1u);
    EXPECT_TRUE(block->insts[0].predictedTaken);
    EXPECT_EQ(f.fetch->pcOf(0), 8u);
}

TEST(Fetch, CondBranchPredictedNotTakenOnBtbMiss)
{
    ProgramBuilder b;
    b.beq(1, 2, "away");
    b.nop();
    b.nop();
    b.nop();
    b.label("away");
    b.halt();
    FetchFixture f(1, FetchPolicy::TrueRoundRobin, b.finish());
    auto block = f.fetch->fetchCycle(1);
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(block->insts.size(), 4u); // fall-through keeps filling
    EXPECT_FALSE(block->insts[0].predictedTaken);
    EXPECT_EQ(block->insts[0].predictedNextPc, 1u);
}

TEST(Fetch, CondBranchPredictedTakenRedirects)
{
    ProgramBuilder b;
    b.beq(1, 2, "away");
    b.nop();
    b.nop();
    b.nop();
    b.label("away");
    b.halt();
    FetchFixture f(1, FetchPolicy::TrueRoundRobin, b.finish());
    f.btb.update(0, 0, true, 4);
    f.btb.update(0, 0, true, 4); // counter to strong taken
    auto block = f.fetch->fetchCycle(1);
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(block->insts.size(), 1u);
    EXPECT_TRUE(block->insts[0].predictedTaken);
    EXPECT_EQ(block->insts[0].predictedNextPc, 4u);
    EXPECT_EQ(f.fetch->pcOf(0), 4u);
}

TEST(Fetch, SquashRestoresStoppedThread)
{
    FetchFixture f(1, FetchPolicy::TrueRoundRobin, straightLine(2));
    f.fetch->fetchCycle(1); // consumes HALT, stops
    EXPECT_FALSE(f.fetch->fetchCycle(2).has_value());
    f.fetch->onSquash(0, 0);
    EXPECT_TRUE(f.fetch->fetchCycle(3).has_value());
}

TEST(Fetch, TrueRoundRobinCyclesThreads)
{
    FetchFixture f(3, FetchPolicy::TrueRoundRobin, straightLine(40));
    EXPECT_EQ(f.fetch->fetchCycle(1)->tid, 0u);
    EXPECT_EQ(f.fetch->fetchCycle(2)->tid, 1u);
    EXPECT_EQ(f.fetch->fetchCycle(3)->tid, 2u);
    EXPECT_EQ(f.fetch->fetchCycle(4)->tid, 0u);
}

TEST(Fetch, TrueRoundRobinWastesStoppedThreadsSlot)
{
    // Thread 1 halts; True RR still gives it a turn (wasted),
    // matching the paper's "irrespective of the state" counter.
    FetchFixture f(2, FetchPolicy::TrueRoundRobin, straightLine(2));
    EXPECT_EQ(f.fetch->fetchCycle(1)->tid, 0u); // t0 fetches HALT
    EXPECT_EQ(f.fetch->fetchCycle(2)->tid, 1u); // t1 fetches HALT
    // Both stopped (but not finished): every slot is wasted now.
    EXPECT_FALSE(f.fetch->fetchCycle(3).has_value());
    EXPECT_FALSE(f.fetch->fetchCycle(4).has_value());
}

TEST(Fetch, TrueRoundRobinSkipsFinishedThreads)
{
    FetchFixture f(2, FetchPolicy::TrueRoundRobin, straightLine(40));
    f.fetch->onHaltCommitted(0);
    EXPECT_EQ(f.fetch->fetchCycle(1)->tid, 1u);
    EXPECT_EQ(f.fetch->fetchCycle(2)->tid, 1u);
}

TEST(Fetch, MaskedRoundRobinSkipsMaskedThread)
{
    FetchFixture f(3, FetchPolicy::MaskedRoundRobin, straightLine(40));
    f.fetch->onCommitBlockedBottom(1);
    EXPECT_TRUE(f.fetch->masked(1));
    EXPECT_EQ(f.fetch->fetchCycle(1)->tid, 0u);
    EXPECT_EQ(f.fetch->fetchCycle(2)->tid, 2u);
    EXPECT_EQ(f.fetch->fetchCycle(3)->tid, 0u);
    // Commit unmasks.
    f.fetch->onCommitBlock(1);
    EXPECT_FALSE(f.fetch->masked(1));
    EXPECT_EQ(f.fetch->fetchCycle(4)->tid, 1u);
}

TEST(Fetch, TrueRoundRobinIgnoresMaskEvents)
{
    FetchFixture f(2, FetchPolicy::TrueRoundRobin, straightLine(40));
    f.fetch->onCommitBlockedBottom(0);
    EXPECT_FALSE(f.fetch->masked(0));
    EXPECT_EQ(f.fetch->fetchCycle(1)->tid, 0u);
}

TEST(Fetch, ConditionalSwitchSticksUntilTrigger)
{
    FetchFixture f(2, FetchPolicy::ConditionalSwitch,
                   straightLine(40));
    EXPECT_EQ(f.fetch->fetchCycle(1)->tid, 0u);
    EXPECT_EQ(f.fetch->fetchCycle(2)->tid, 0u);
    f.fetch->onSwitchTrigger();
    EXPECT_EQ(f.fetch->fetchCycle(3)->tid, 1u);
    EXPECT_EQ(f.fetch->fetchCycle(4)->tid, 1u);
}

TEST(Fetch, ConditionalSwitchLeavesStoppedThread)
{
    FetchFixture f(2, FetchPolicy::ConditionalSwitch, straightLine(2));
    EXPECT_EQ(f.fetch->fetchCycle(1)->tid, 0u); // halts thread 0
    EXPECT_EQ(f.fetch->fetchCycle(2)->tid, 1u); // forced switch
}

TEST(Fetch, AdaptiveSkipsHighStallScoreThread)
{
    FetchFixture f(2, FetchPolicy::Adaptive, straightLine(80));
    // Raise thread 0's stall score beyond the threshold (default 8).
    for (int i = 0; i < 4; ++i)
        f.fetch->onCommitBlockedBottom(0);
    EXPECT_EQ(f.fetch->fetchCycle(1)->tid, 1u);
    EXPECT_EQ(f.fetch->fetchCycle(2)->tid, 1u);
    // The score decays one per tick; after enough ticks thread 0
    // rejoins the rotation.
    for (int i = 0; i < 10; ++i)
        f.fetch->tick(0);
    bool saw_zero = false;
    for (int i = 0; i < 4; ++i)
        saw_zero |= f.fetch->fetchCycle(10 + i)->tid == 0;
    EXPECT_TRUE(saw_zero);
}

TEST(Fetch, AdaptiveFallsBackWhenAllScoresHigh)
{
    FetchFixture f(2, FetchPolicy::Adaptive, straightLine(80));
    for (int i = 0; i < 4; ++i) {
        f.fetch->onCommitBlockedBottom(0);
        f.fetch->onCommitBlockedBottom(1);
    }
    // Both above threshold: fetch must not starve.
    EXPECT_TRUE(f.fetch->fetchCycle(1).has_value());
}

TEST(Fetch, WeightedRoundRobinHonorsWeights)
{
    Program prog = straightLine(400);
    std::vector<Instruction> code = decodeAll(prog);
    MachineConfig cfg;
    cfg.numThreads = 2;
    cfg.fetchPolicy = FetchPolicy::WeightedRoundRobin;
    cfg.fetchWeights = {3, 1};
    PredictorBank btb(64, 1);
    FetchUnit fetch(cfg, code, btb);

    unsigned counts[2] = {0, 0};
    for (Cycle now = 1; now <= 40; ++now) {
        auto block = fetch.fetchCycle(now);
        ASSERT_TRUE(block.has_value());
        ++counts[block->tid];
    }
    // 3:1 weighting: thread 0 gets ~30 of 40 slots.
    EXPECT_EQ(counts[0], 30u);
    EXPECT_EQ(counts[1], 10u);
}

TEST(Fetch, WeightedRoundRobinDefaultsToEqual)
{
    Program prog = straightLine(400);
    std::vector<Instruction> code = decodeAll(prog);
    MachineConfig cfg;
    cfg.numThreads = 2;
    cfg.fetchPolicy = FetchPolicy::WeightedRoundRobin;
    PredictorBank btb(64, 1);
    FetchUnit fetch(cfg, code, btb);

    unsigned counts[2] = {0, 0};
    for (Cycle now = 1; now <= 20; ++now) {
        auto block = fetch.fetchCycle(now);
        ASSERT_TRUE(block.has_value());
        ++counts[block->tid];
    }
    EXPECT_EQ(counts[0], 10u);
    EXPECT_EQ(counts[1], 10u);
}

TEST(Fetch, WeightedRoundRobinSkipsUnfetchableThreads)
{
    Program prog = straightLine(400);
    std::vector<Instruction> code = decodeAll(prog);
    MachineConfig cfg;
    cfg.numThreads = 2;
    cfg.fetchPolicy = FetchPolicy::WeightedRoundRobin;
    cfg.fetchWeights = {1, 8};
    PredictorBank btb(64, 1);
    FetchUnit fetch(cfg, code, btb);
    fetch.onHaltCommitted(1);

    // Thread 1 is gone; thread 0 must still fetch every cycle.
    for (Cycle now = 1; now <= 10; ++now) {
        auto block = fetch.fetchCycle(now);
        ASSERT_TRUE(block.has_value());
        EXPECT_EQ(block->tid, 0u);
    }
}

TEST(Fetch, AllFinishedTracking)
{
    FetchFixture f(2, FetchPolicy::TrueRoundRobin, straightLine(8));
    EXPECT_FALSE(f.fetch->allFinished());
    f.fetch->onHaltCommitted(0);
    EXPECT_FALSE(f.fetch->allFinished());
    f.fetch->onHaltCommitted(1);
    EXPECT_TRUE(f.fetch->allFinished());
}

TEST(Fetch, StatsReport)
{
    FetchFixture f(1, FetchPolicy::TrueRoundRobin, straightLine(12));
    f.fetch->fetchCycle(1);
    StatsRegistry registry;
    f.fetch->reportStats(registry, "fetch");
    EXPECT_DOUBLE_EQ(registry.get("fetch.blocks"), 1.0);
    EXPECT_DOUBLE_EQ(registry.get("fetch.instructions"), 4.0);
}

} // namespace
} // namespace sdsp

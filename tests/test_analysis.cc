/**
 * @file
 * Tests for the sdsp-lint static analyzer: CFG construction, the
 * register dataflow analyses, every diagnostic on a purpose-built
 * adversarial program, the dependence/recurrence analyzer, and two
 * differential checks against the executors — the interpreter never
 * leaves the CFG's reachable region, and the pipeline never commits
 * faster than the static IPC bound.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/ilp.hh"
#include "analysis/lint.hh"
#include "asm/assembler.hh"
#include "asm/builder.hh"
#include "core/config.hh"
#include "harness/runner.hh"
#include "isa/interpreter.hh"
#include "workloads/workload.hh"

namespace sdsp
{
namespace
{

bool
hasCode(const LintReport &report, LintCode code)
{
    for (const LintFinding &finding : report.findings) {
        if (finding.code == code)
            return true;
    }
    return false;
}

const LintFinding *
findingAt(const LintReport &report, LintCode code, InstAddr pc)
{
    for (const LintFinding &finding : report.findings) {
        if (finding.code == code && finding.pc == pc)
            return &finding;
    }
    return nullptr;
}

/** A two-block counted loop plus exit: the canonical CFG fixture. */
Program
countedLoop()
{
    ProgramBuilder b;
    b.ldi(2, 0);             // 0
    b.ldi(3, 10);            // 1
    b.label("loop");
    b.bge(2, 3, "done");     // 2
    b.addi(2, 2, 1);         // 3
    b.j("loop");             // 4
    b.label("done");
    b.halt();                // 5
    return b.finish();
}

// --------------------------------------------------------------------
// CFG construction
// --------------------------------------------------------------------

TEST(Cfg, CountedLoopShape)
{
    Cfg cfg = Cfg::build(countedLoop());

    ASSERT_EQ(cfg.numInsts(), 6u);
    ASSERT_EQ(cfg.numBlocks(), 4u);
    // Blocks are in address order: [0,1] [2,2] [3,4] [5,5].
    EXPECT_EQ(cfg.block(0).first, 0u);
    EXPECT_EQ(cfg.block(0).last, 1u);
    EXPECT_EQ(cfg.block(1).first, 2u);
    EXPECT_EQ(cfg.block(1).last, 2u);
    EXPECT_EQ(cfg.block(2).first, 3u);
    EXPECT_EQ(cfg.block(2).last, 4u);
    EXPECT_EQ(cfg.block(3).first, 5u);
    EXPECT_EQ(cfg.block(3).last, 5u);

    EXPECT_EQ(cfg.entryBlock(), 0u);
    EXPECT_EQ(cfg.block(0).succs, (std::vector<std::uint32_t>{1}));
    // Branch: taken target (block 3) plus fallthrough (block 2).
    EXPECT_EQ(cfg.block(1).succs, (std::vector<std::uint32_t>{2, 3}));
    EXPECT_EQ(cfg.block(2).succs, (std::vector<std::uint32_t>{1}));
    EXPECT_TRUE(cfg.block(3).succs.empty()); // HALT

    for (InstAddr pc = 0; pc < cfg.numInsts(); ++pc)
        EXPECT_TRUE(cfg.reachable(pc)) << "pc " << pc;
    EXPECT_FALSE(cfg.hasIndirectJumps());
}

TEST(Cfg, IndirectJumpIsConservative)
{
    ProgramBuilder b;
    b.ldi(2, 3);
    b.jr(2);           // could go anywhere
    b.label("a");
    b.halt();
    b.label("unref");  // no direct reference, but JR may reach it
    b.halt();
    Cfg cfg = Cfg::build(b.finish());

    EXPECT_TRUE(cfg.hasIndirectJumps());
    // The JR block has an edge to every block, so everything is
    // reachable.
    for (InstAddr pc = 0; pc < cfg.numInsts(); ++pc)
        EXPECT_TRUE(cfg.reachable(pc)) << "pc " << pc;
    std::uint32_t jr_block = cfg.blockOf(1);
    EXPECT_EQ(cfg.block(jr_block).succs.size(), cfg.numBlocks());
}

TEST(Cfg, UndecodableWordDecodesAsInvalid)
{
    Program program;
    program.code.push_back(0xFFu << 24); // no such opcode
    Cfg cfg = Cfg::build(program);
    ASSERT_EQ(cfg.numInsts(), 1u);
    EXPECT_FALSE(cfg.decoded(0));
    EXPECT_TRUE(cfg.block(cfg.blockOf(0)).succs.empty());
}

// --------------------------------------------------------------------
// Dataflow fixtures
// --------------------------------------------------------------------

TEST(Dataflow, LivenessAcrossLoop)
{
    Cfg cfg = Cfg::build(countedLoop());
    DataflowResult flow = DataflowResult::run(cfg);

    // Header block (r2 < r3 test): both registers are upward-exposed
    // and live-in; the loop keeps them live around the back edge.
    const BlockDataflow &header = flow.blocks[1];
    EXPECT_TRUE(header.use.test(2));
    EXPECT_TRUE(header.use.test(3));
    EXPECT_TRUE(header.liveIn.test(2));
    EXPECT_TRUE(header.liveIn.test(3));

    // Entry block defines both before any read: nothing live-in.
    const BlockDataflow &entry = flow.blocks[0];
    EXPECT_TRUE(entry.def.test(2));
    EXPECT_TRUE(entry.def.test(3));
    EXPECT_TRUE(entry.use.none());
    EXPECT_TRUE(entry.liveIn.none());
}

TEST(Dataflow, DefiniteAssignmentMeetIsIntersection)
{
    // Diamond where r4 is initialized on the fallthrough arm only.
    ProgramBuilder b;
    b.ldi(2, 5);           // 0
    b.bge(2, 2, "skip");   // 1
    b.ldi(4, 1);           // 2: one arm only
    b.label("skip");
    b.add(5, 4, 2);        // 3: r4 not definite here
    b.halt();              // 4
    Cfg cfg = Cfg::build(b.finish());
    DataflowResult flow = DataflowResult::run(cfg);

    std::uint32_t join = cfg.blockOf(3);
    EXPECT_FALSE(flow.blocks[join].definiteIn.test(4));
    EXPECT_TRUE(flow.blocks[join].definiteIn.test(2));
}

// --------------------------------------------------------------------
// Diagnostics, one adversarial program each
// --------------------------------------------------------------------

TEST(Lint, ReadBeforeWriteOnOnePathOnly)
{
    ProgramBuilder b;
    b.ldi(2, 5);
    b.bge(2, 2, "skip");
    b.ldi(4, 1);
    b.label("skip");
    b.add(5, 4, 2); // pc 3: reads r4, unwritten when the branch takes
    b.halt();
    LintReport report = lintProgram(b.finish());

    ASSERT_TRUE(hasCode(report, LintCode::ReadBeforeWrite));
    EXPECT_NE(findingAt(report, LintCode::ReadBeforeWrite, 3),
              nullptr);
    EXPECT_GE(report.errorCount(), 1u);

    // Initializing r4 on both arms cures it.
    ProgramBuilder fixed;
    fixed.ldi(2, 5);
    fixed.ldi(4, 0);
    fixed.bge(2, 2, "skip");
    fixed.ldi(4, 1);
    fixed.label("skip");
    fixed.add(5, 4, 2);
    fixed.st(5, 0, 2); // keep the sum live (and r2 is 5: in bounds
                       // would need data; no data section means any
                       // access is out of bounds, so store via a
                       // separate clean check below)
    fixed.halt();
    LintReport fixed_report = lintProgram(fixed.finish());
    EXPECT_FALSE(hasCode(fixed_report, LintCode::ReadBeforeWrite));
}

TEST(Lint, UnreachableBlock)
{
    ProgramBuilder b;
    b.ldi(2, 1);
    b.j("end");
    b.addi(2, 2, 1); // pc 2: skipped by the jump, no path reaches it
    b.label("end");
    b.halt();
    LintReport report = lintProgram(b.finish());

    EXPECT_NE(findingAt(report, LintCode::UnreachableBlock, 2),
              nullptr);
    EXPECT_EQ(report.stats.reachableBlocks + 1,
              report.stats.numBlocks);
}

TEST(Lint, DeadWrite)
{
    ProgramBuilder b;
    b.ldi(2, 1); // pc 0: overwritten before any read
    b.ldi(2, 2); // pc 1: never read at all
    b.halt();
    LintReport report = lintProgram(b.finish());

    EXPECT_NE(findingAt(report, LintCode::DeadWrite, 0), nullptr);
    EXPECT_NE(findingAt(report, LintCode::DeadWrite, 1), nullptr);
}

TEST(Lint, OutOfBoundsStore)
{
    ProgramBuilder b;
    b.dword("x"); // memorySize = 8
    b.ldi(2, 0);
    b.ldi(3, 5);
    b.st(3, 64, 2); // pc 2: address 64 is provably outside 8 bytes
    b.halt();
    LintReport report = lintProgram(b.finish());

    EXPECT_NE(findingAt(report, LintCode::OobAccess, 2), nullptr);
    EXPECT_GE(report.errorCount(), 1u);
}

TEST(Lint, MisalignedLoad)
{
    ProgramBuilder b;
    b.array("buf", 8); // 64 bytes
    b.ldi(2, 4);
    b.ld(3, 0, 2); // pc 1: address 4 is in bounds but not 8-aligned
    b.st(3, 8, 2); // keep r3 live; address 12 is also misaligned
    b.halt();
    LintReport report = lintProgram(b.finish());

    EXPECT_NE(findingAt(report, LintCode::MisalignedAccess, 1),
              nullptr);
    EXPECT_NE(findingAt(report, LintCode::MisalignedAccess, 2),
              nullptr);
}

TEST(Lint, InBoundsAlignedAccessIsClean)
{
    ProgramBuilder b;
    b.array("buf", 8);
    b.ldi(2, 8);
    b.ld(3, 0, 2);
    b.st(3, 16, 2);
    b.halt();
    LintReport report = lintProgram(b.finish());
    EXPECT_FALSE(hasCode(report, LintCode::OobAccess));
    EXPECT_FALSE(hasCode(report, LintCode::MisalignedAccess));
}

TEST(Lint, SpinOutsideLoop)
{
    ProgramBuilder b;
    b.ldi(2, 0);
    b.spin(); // pc 1: a spin hint in straight-line code is useless
    b.st(2, 0, 2);
    b.halt();
    b.dword("flag");
    LintReport report = lintProgram(b.finish());
    EXPECT_NE(findingAt(report, LintCode::SpinOutsideLoop, 1),
              nullptr);
}

TEST(Lint, TidReQueriedInsideLoop)
{
    ProgramBuilder b;
    b.ldi(2, 0);
    b.ldi(3, 8);
    b.label("loop");
    b.tid(4);          // pc 2: loop-invariant, should be hoisted
    b.add(2, 2, 4);
    b.blt(2, 3, "loop");
    b.halt();
    LintReport report = lintProgram(b.finish());
    EXPECT_NE(findingAt(report, LintCode::TidNthInLoop, 2), nullptr);
}

TEST(Lint, FallOffEnd)
{
    ProgramBuilder b;
    b.ldi(2, 0);
    b.addi(2, 2, 1); // last instruction is not a HALT or jump
    LintReport report = lintProgram(b.finish());
    EXPECT_TRUE(hasCode(report, LintCode::FallOffEnd));
    EXPECT_GE(report.errorCount(), 1u);
}

TEST(Lint, BadBranchTargetOnHandEncodedJump)
{
    Program program;
    program.code.push_back(
        Instruction::makeJ(Opcode::J, 0, 99).encode());
    program.code.push_back(
        Instruction::makeR(Opcode::HALT, 0, 0, 0).encode());
    LintReport report = lintProgram(program);
    EXPECT_NE(findingAt(report, LintCode::BadBranchTarget, 0),
              nullptr);
}

TEST(Lint, BadOpcodeOnRawWord)
{
    Program program;
    program.code.push_back(0xFFu << 24);
    LintReport report = lintProgram(program);
    EXPECT_NE(findingAt(report, LintCode::BadOpcode, 0), nullptr);
    EXPECT_GE(report.errorCount(), 1u);
}

TEST(Lint, SourceLinesFlowFromAssembler)
{
    const std::string source = "        ldi   r2, 1\n"
                               "        ldi   r2, 2\n"
                               "        halt\n";
    AssemblyResult assembly = assemble(source);
    ASSERT_EQ(assembly.sourceLines,
              (std::vector<int>{1, 2, 3}));

    LintOptions options;
    options.sourceLines = assembly.sourceLines;
    LintReport report = lintProgram(assembly.program, options);
    const LintFinding *dead =
        findingAt(report, LintCode::DeadWrite, 0);
    ASSERT_NE(dead, nullptr);
    EXPECT_EQ(dead->line, 1);
}

// --------------------------------------------------------------------
// Dependence / recurrence analysis
// --------------------------------------------------------------------

TEST(Ilp, AccumulationLoopRecurrence)
{
    // fadd r2, r2, r2 carries a one-instruction recurrence: one
    // iteration per FpAdd latency.
    ProgramBuilder b;
    b.ldi(2, 1);
    b.ldi(3, 100);
    b.ldi(4, 0);
    b.label("loop");
    b.fadd(2, 2, 2);
    b.addi(4, 4, 1);
    b.blt(4, 3, "loop");
    b.st(2, 0, 4); // keep the sum live
    b.halt();
    b.dword("out");
    Program program = b.finish();
    Cfg cfg = Cfg::build(program);

    DependenceSummary unit =
        analyzeDependence(cfg, LatencyModel::unit());
    ASSERT_EQ(unit.loops.size(), 1u);
    EXPECT_DOUBLE_EQ(unit.loops[0].recurrence, 1.0);

    LatencyModel real =
        LatencyModel::fromLatencies(FuConfig::sdspDefault().latency);
    ASSERT_EQ(real.of(FuClass::FpAdd), 3u);
    DependenceSummary timed = analyzeDependence(cfg, real);
    ASSERT_EQ(timed.loops.size(), 1u);
    EXPECT_DOUBLE_EQ(timed.loops[0].recurrence, 3.0);

    // The bound machinery: one thread cannot beat own/rec, and the
    // finite-cycle bound credits the straight-line prologue.
    IpcBoundInputs inputs;
    inputs.numThreads = 1;
    StaticIpcBound bound = staticIpcBound(timed, inputs);
    EXPECT_LE(bound.asymptotic(), inputs.blockSize);
    EXPECT_GE(bound.boundAtCycles(100), bound.asymptotic());
}

TEST(Ilp, LoopFreeProgramHasOnlyTransientCredit)
{
    ProgramBuilder c;
    c.ldi(3, 0);
    c.ldi(2, 1);
    c.addi(2, 2, 1);
    c.st(2, 0, 3);
    c.halt();
    c.dword("out");
    Cfg cfg = Cfg::build(c.finish());
    DependenceSummary dep =
        analyzeDependence(cfg, LatencyModel::unit());
    EXPECT_TRUE(dep.loops.empty());
    EXPECT_EQ(dep.onceInsts, dep.reachableInsts);

    IpcBoundInputs inputs;
    StaticIpcBound bound = staticIpcBound(dep, inputs);
    EXPECT_DOUBLE_EQ(bound.perThreadSteady, 0.0);
    // Everything is transient: the bound decays toward zero as the
    // hypothetical run length grows.
    EXPECT_GT(bound.boundAtCycles(10), bound.boundAtCycles(10'000));
}

// --------------------------------------------------------------------
// The eleven paper workloads (plus extensions) lint clean
// --------------------------------------------------------------------

TEST(LintWorkloads, AllBuiltinsAreClean)
{
    std::vector<const Workload *> everything = allWorkloads();
    for (const Workload *workload : extensionWorkloads())
        everything.push_back(workload);
    ASSERT_GE(everything.size(), 11u);

    for (const Workload *workload : everything) {
        for (unsigned threads : {1u, 4u, 6u}) {
            LintReport report = workload->lint(threads, 12);
            EXPECT_TRUE(report.clean())
                << workload->name() << " t=" << threads << ":\n"
                << report.toText(workload->name());
        }
    }
}

// --------------------------------------------------------------------
// Differential checks against the executors
// --------------------------------------------------------------------

TEST(LintDifferential, InterpreterNeverLeavesReachableRegion)
{
    for (const char *name : {"LL1", "Matrix", "Sieve"}) {
        const Workload &workload = workloadByName(name);
        const unsigned threads = 2;
        WorkloadImage image = workload.build(threads, 12);
        Cfg cfg = Cfg::build(image.program);

        Interpreter interp(image.program, threads);
        std::set<InstAddr> executed;
        std::uint64_t budget = 5'000'000;
        while (!interp.finished() && budget > 0) {
            for (unsigned tid = 0; tid < threads; ++tid) {
                if (interp.halted(tid))
                    continue;
                executed.insert(interp.pc(tid));
                interp.stepThread(tid);
                --budget;
            }
        }
        ASSERT_TRUE(interp.finished()) << name;

        for (InstAddr pc : executed) {
            EXPECT_TRUE(cfg.reachable(pc))
                << name << ": executed pc " << pc
                << " is analyzer-unreachable";
        }
    }
}

TEST(LintDifferential, PipelineIpcStaysUnderStaticBound)
{
    for (const char *name : {"LL1", "LL5", "Matrix"}) {
        const Workload &workload = workloadByName(name);
        for (unsigned threads : {1u, 4u}) {
            MachineConfig config;
            config.numThreads = threads;
            WorkloadImage image = workload.build(threads, 12);
            Cfg cfg = Cfg::build(image.program);
            DependenceSummary dep = analyzeDependence(
                cfg,
                LatencyModel::fromLatencies(config.fu.latency));
            IpcBoundInputs inputs;
            inputs.numThreads = threads;
            inputs.blockSize = config.blockSize;
            inputs.issueWidth = config.issueWidth;
            StaticIpcBound bound = staticIpcBound(dep, inputs);

            RunResult result = runWorkload(workload, config, 12);
            ASSERT_TRUE(result.finished) << name;
            ASSERT_GT(result.cycles, 0u) << name;
            EXPECT_LE(result.ipc,
                      bound.boundAtCycles(result.cycles) *
                          (1.0 + 1e-9))
                << name << " t=" << threads;
        }
    }
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Unit tests for the text assembler and disassembler.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/interpreter.hh"

namespace sdsp
{
namespace
{

TEST(Assembler, BasicProgramRuns)
{
    AssemblyResult result = assemble(R"(
        ; compute 6 * 7 the slow way
            ldi  r1, 6
            ldi  r2, 7
            ldi  r3, 0
        loop:
            add  r3, r3, r2
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
    )");
    Interpreter interp(result.program, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 3), 42u);
    EXPECT_EQ(result.maxRegisterUsed, 3u);
}

TEST(Assembler, MemoryOperandsAndData)
{
    AssemblyResult result = assemble(R"(
        .dword counter 5
        .words table 10 20 30
            la   r1, counter
            ld   r2, 0(r1)
            la   r3, table
            ld   r4, 8(r3)
            add  r2, r2, r4
            st   r2, 0(r1)
            halt
    )");
    Interpreter interp(result.program, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(readWord(interp.memory(), 0), 25u);
}

TEST(Assembler, DoubleDirectiveAndFpOps)
{
    AssemblyResult result = assemble(R"(
        .double a 1.5
        .double b 2.25
        .double out 0
            la   r1, a
            ld   r2, 0(r1)
            la   r1, b
            ld   r3, 0(r1)
            fadd r4, r2, r3
            la   r1, out
            st   r4, 0(r1)
            halt
    )");
    Interpreter interp(result.program, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_DOUBLE_EQ(readDouble(interp.memory(), 16), 3.75);
}

TEST(Assembler, SpaceDirectiveZeroes)
{
    AssemblyResult result = assemble(R"(
        .space buf 3
            halt
    )");
    EXPECT_EQ(result.program.data.size(), 24u);
}

TEST(Assembler, PseudoInstructions)
{
    AssemblyResult result = assemble(R"(
            li   r1, 100000
            mov  r2, r1
            halt
    )");
    Interpreter interp(result.program, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 2), 100000u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    AssemblyResult result = assemble(R"(
        # hash comment
        ; semicolon comment

            ldi r1, 1   ; trailing
            halt        # trailing
    )");
    EXPECT_EQ(result.program.code.size(), 2u);
}

TEST(Assembler, LabelOnSameLineAsInstruction)
{
    AssemblyResult result = assemble(R"(
            j skip
            ldi r1, 9
        skip: halt
    )");
    Interpreter interp(result.program, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 1), 0u);
}

TEST(Assembler, MultithreadOpcodes)
{
    AssemblyResult result = assemble(R"(
            tid  r1
            nth  r2
            spin
            halt
    )");
    Interpreter interp(result.program, 2);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 1), 0u);
    EXPECT_EQ(interp.reg(1, 1), 1u);
    EXPECT_EQ(interp.reg(1, 2), 2u);
}

TEST(Assembler, HexImmediates)
{
    AssemblyResult result = assemble(R"(
            ldi r1, 0xff
            halt
    )");
    Interpreter interp(result.program, 1);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 1), 255u);
}

TEST(Assembler, UnknownMnemonicIsFatal)
{
    EXPECT_EXIT(assemble("frobnicate r1, r2\n"),
                ::testing::ExitedWithCode(1), "line 1");
}

TEST(Assembler, WrongArityIsFatal)
{
    EXPECT_EXIT(assemble("add r1, r2\n"),
                ::testing::ExitedWithCode(1), "expects 3");
}

TEST(Assembler, BadRegisterIsFatal)
{
    EXPECT_EXIT(assemble("add r1, r200, r2\n"),
                ::testing::ExitedWithCode(1), "must be a register");
}

TEST(Assembler, BadMemOperandIsFatal)
{
    EXPECT_EXIT(assemble("ld r1, 8[r2]\n"),
                ::testing::ExitedWithCode(1), "line 1");
}

TEST(Assembler, UnknownDirectiveIsFatal)
{
    EXPECT_EXIT(assemble(".bogus x 1\n"),
                ::testing::ExitedWithCode(1), "unknown directive");
}

TEST(Assembler, LayoutOptionApplies)
{
    LayoutOptions layout;
    layout.alignBranchesToBlockEnd = true;
    AssemblyResult result = assemble(R"(
            ldi r1, 2
        top:
            addi r1, r1, -1
            bne r1, r0, top
            halt
    )", 0, layout);
    for (std::size_t pc = 0; pc < result.program.code.size(); ++pc) {
        Instruction inst = Instruction::decode(result.program.code[pc]);
        if (inst.isControl()) {
            EXPECT_EQ(pc % 4, 3u);
        }
    }
}

TEST(Disassembler, ListsEveryInstruction)
{
    AssemblyResult result = assemble(R"(
            ldi r1, 5
            add r2, r1, r1
            halt
    )");
    std::string text = disassemble(result.program);
    EXPECT_NE(text.find("LDI r1, 5"), std::string::npos);
    EXPECT_NE(text.find("ADD r2, r1, r1"), std::string::npos);
    EXPECT_NE(text.find("HALT"), std::string::npos);
}

TEST(Assembler, RoundTripThroughDisassembly)
{
    // Every mnemonic the disassembler prints must reassemble to the
    // same word (for the register forms it prints canonically).
    AssemblyResult first = assemble(R"(
            add r1, r2, r3
            sub r4, r5, r6
            fmul r7, r8, r9
            ldi r1, -5
            halt
    )");
    std::string listing;
    for (InstWord word : first.program.code)
        listing += Instruction::decode(word).toString() + "\n";
    AssemblyResult second = assemble(listing);
    EXPECT_EQ(first.program.code, second.program.code);
}

} // namespace
} // namespace sdsp

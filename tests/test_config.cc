/**
 * @file
 * Unit tests for MachineConfig: derived quantities, validation of
 * every constraint, and the human-readable names used in reports.
 */

#include <gtest/gtest.h>

#include "core/config.hh"

namespace sdsp
{
namespace
{

TEST(MachineConfig, PaperDefaults)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.numThreads, 4u);
    EXPECT_EQ(cfg.fetchPolicy, FetchPolicy::TrueRoundRobin);
    EXPECT_EQ(cfg.suEntries, 32u);
    EXPECT_EQ(cfg.blockSize, 4u);
    EXPECT_EQ(cfg.issueWidth, 8u);
    EXPECT_EQ(cfg.writebackWidth, 8u);
    EXPECT_EQ(cfg.commitPolicy, CommitPolicy::FlexibleFourBlocks);
    EXPECT_EQ(cfg.renameScheme, RenameScheme::FullRenaming);
    EXPECT_TRUE(cfg.bypassing);
    EXPECT_EQ(cfg.numRegisters, 128u);
    EXPECT_EQ(cfg.storeBufferEntries, 8u);
    EXPECT_EQ(cfg.dcache.sizeBytes, 8192u);
    EXPECT_EQ(cfg.dcache.ways, 2u);
    EXPECT_EQ(cfg.dcache.lineBytes, 32u);
    EXPECT_TRUE(cfg.perfectICache);
    EXPECT_EQ(cfg.btbBanks, 1u);
    cfg.validate(); // must not exit
}

TEST(MachineConfig, DerivedQuantities)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.regsPerThread(), 32u);
    EXPECT_EQ(cfg.suBlocks(), 8u);
    EXPECT_EQ(cfg.commitWindowBlocks(), 4u);
    cfg.commitPolicy = CommitPolicy::LowestBlockOnly;
    EXPECT_EQ(cfg.commitWindowBlocks(), 1u);
    cfg.numThreads = 6;
    EXPECT_EQ(cfg.regsPerThread(), 21u); // floor division
}

TEST(MachineConfig, ValidationRejectsEachBadAxis)
{
    auto expect_fatal = [](auto mutate, const char *pattern) {
        MachineConfig cfg;
        mutate(cfg);
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    pattern);
    };

    expect_fatal([](MachineConfig &c) { c.numThreads = 0; },
                 "numThreads");
    expect_fatal([](MachineConfig &c) { c.numThreads = 17; },
                 "numThreads");
    expect_fatal([](MachineConfig &c) { c.blockSize = 8; },
                 "block");
    expect_fatal([](MachineConfig &c) { c.suEntries = 30; },
                 "multiple");
    expect_fatal([](MachineConfig &c) { c.suEntries = 0; },
                 "multiple");
    expect_fatal([](MachineConfig &c) { c.issueWidth = 0; },
                 "width");
    expect_fatal([](MachineConfig &c) { c.writebackWidth = 0; },
                 "width");
    expect_fatal([](MachineConfig &c) { c.btbBanks = 0; }, "btbBanks");
    expect_fatal([](MachineConfig &c) { c.storeBufferEntries = 3; },
                 "commit block");
    expect_fatal(
        [](MachineConfig &c) {
            c.fu.count[static_cast<unsigned>(FuClass::Load)] = 0;
        },
        "zero instances");
    expect_fatal(
        [](MachineConfig &c) {
            c.fu.latency[static_cast<unsigned>(FuClass::IntAlu)] = 0;
        },
        "zero latency");
    expect_fatal(
        [](MachineConfig &c) {
            c.fetchPolicy = FetchPolicy::WeightedRoundRobin;
            c.fetchWeights = {1, 2}; // arity != numThreads (4)
        },
        "fetchWeights");
    expect_fatal(
        [](MachineConfig &c) {
            c.fetchPolicy = FetchPolicy::WeightedRoundRobin;
            c.fetchWeights = {1, 2, 3, 0};
        },
        "fetchWeights");
}

TEST(MachineConfig, WeightsOnlyCheckedForWeightedPolicy)
{
    MachineConfig cfg;
    cfg.fetchWeights = {9, 9}; // ignored under TrueRR
    cfg.validate();
    SUCCEED();
}

TEST(MachineConfig, Names)
{
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::TrueRoundRobin),
                 "TrueRR");
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::MaskedRoundRobin),
                 "MaskedRR");
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::ConditionalSwitch),
                 "CSwitch");
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::Adaptive), "Adaptive");
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::WeightedRoundRobin),
                 "WeightedRR");
    EXPECT_STREQ(renameSchemeName(RenameScheme::FullRenaming),
                 "FullRenaming");
    EXPECT_STREQ(renameSchemeName(RenameScheme::Scoreboard1Bit),
                 "Scoreboard1Bit");
    EXPECT_STREQ(commitPolicyName(CommitPolicy::FlexibleFourBlocks),
                 "Flexible");
    EXPECT_STREQ(commitPolicyName(CommitPolicy::LowestBlockOnly),
                 "LowestOnly");
}

TEST(MachineConfig, ToStringMentionsKeyAxes)
{
    MachineConfig cfg;
    cfg.numThreads = 3;
    cfg.fetchPolicy = FetchPolicy::ConditionalSwitch;
    cfg.suEntries = 48;
    std::string text = cfg.toString();
    EXPECT_NE(text.find("threads=3"), std::string::npos);
    EXPECT_NE(text.find("CSwitch"), std::string::npos);
    EXPECT_NE(text.find("su=48"), std::string::npos);
    EXPECT_NE(text.find("2-way"), std::string::npos);
}

TEST(FuConfig, AccessorsMatchArrays)
{
    FuConfig cfg = FuConfig::sdspDefault();
    for (unsigned i = 0; i < kNumFuClasses; ++i) {
        auto cls = static_cast<FuClass>(i);
        EXPECT_EQ(cfg.countOf(cls), cfg.count[i]);
        EXPECT_EQ(cfg.latencyOf(cls), cfg.latency[i]);
        EXPECT_EQ(cfg.pipelinedOf(cls), cfg.pipelined[i]);
    }
}

} // namespace
} // namespace sdsp

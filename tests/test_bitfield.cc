/**
 * @file
 * Unit tests for the bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "common/bitfield.hh"

namespace sdsp
{
namespace
{

TEST(Bits, ExtractsRightJustified)
{
    EXPECT_EQ(bits(0xDEADBEEFull, 31, 16), 0xDEADu);
    EXPECT_EQ(bits(0xDEADBEEFull, 15, 0), 0xBEEFu);
    EXPECT_EQ(bits(0xFFull, 3, 0), 0xFu);
    EXPECT_EQ(bits(0x80000000ull, 31, 31), 1u);
}

TEST(Bits, SingleBitAndFullWidth)
{
    EXPECT_EQ(bits(0x5ull, 0, 0), 1u);
    EXPECT_EQ(bits(0x5ull, 1, 1), 0u);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(InsertBits, InsertsField)
{
    EXPECT_EQ(insertBits(0, 15, 8, 0xAB), 0xAB00u);
    EXPECT_EQ(insertBits(0xFFFF, 7, 0, 0), 0xFF00u);
    EXPECT_EQ(insertBits(0, 63, 0, ~0ull), ~0ull);
}

TEST(InsertBits, DiscardsOverflow)
{
    // Field wider than the slot is truncated.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1F), 0xFu);
}

TEST(InsertBits, RoundTripsWithBits)
{
    std::uint64_t word = insertBits(0, 23, 17, 0x55);
    EXPECT_EQ(bits(word, 23, 17), 0x55u);
    EXPECT_EQ(bits(word, 16, 0), 0u);
    EXPECT_EQ(bits(word, 31, 24), 0u);
}

TEST(Sext, SignExtends)
{
    EXPECT_EQ(sext(0x3FF, 10), -1);
    EXPECT_EQ(sext(0x200, 10), -512);
    EXPECT_EQ(sext(0x1FF, 10), 511);
    EXPECT_EQ(sext(0, 10), 0);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0x7F, 8), 127);
}

TEST(IsPowerOf2, Classification)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(4097));
}

TEST(Log2i, PowersOfTwo)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(256), 8u);
    EXPECT_EQ(log2i(1ull << 40), 40u);
}

TEST(FitsSigned, Boundaries)
{
    EXPECT_TRUE(fitsSigned(511, 10));
    EXPECT_TRUE(fitsSigned(-512, 10));
    EXPECT_FALSE(fitsSigned(512, 10));
    EXPECT_FALSE(fitsSigned(-513, 10));
    EXPECT_TRUE(fitsSigned(0, 1));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(FitsUnsigned, Boundaries)
{
    EXPECT_TRUE(fitsUnsigned(0x1FFFF, 17));
    EXPECT_FALSE(fitsUnsigned(0x20000, 17));
    EXPECT_TRUE(fitsUnsigned(~0ull, 64));
}

/** Property sweep: insert-then-extract is the identity for every
 *  field position and width that fits a 32-bit word. */
class BitFieldRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitFieldRoundTrip, InsertExtractIdentity)
{
    unsigned lo = GetParam();
    for (unsigned width = 1; lo + width <= 32; width += 3) {
        unsigned hi = lo + width - 1;
        std::uint64_t pattern = 0xA5A5A5A5ull;
        std::uint64_t word = insertBits(0x12345678, hi, lo, pattern);
        std::uint64_t mask =
            width >= 64 ? ~0ull : ((1ull << width) - 1);
        EXPECT_EQ(bits(word, hi, lo), pattern & mask);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, BitFieldRoundTrip,
                         ::testing::Range(0u, 32u, 5u));

} // namespace
} // namespace sdsp

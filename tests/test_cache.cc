/**
 * @file
 * Unit tests for the data-cache timing model: geometry, LRU,
 * direct-mapped conflicts, the single-outstanding-miss non-blocking
 * behaviour, double-miss blocking, and port limits.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace sdsp
{
namespace
{

CacheConfig
smallCache(std::uint32_t ways)
{
    CacheConfig cfg;
    cfg.sizeBytes = 256;
    cfg.lineBytes = 32;
    cfg.ways = ways;
    cfg.missPenalty = 10;
    cfg.ports = 4;
    return cfg;
}

TEST(Cache, ColdMissThenHit)
{
    DataCache cache(smallCache(2));
    cache.beginCycle(1);
    CacheAccessResult miss = cache.access(0x40, 1, false);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.readyCycle, 11u);

    cache.beginCycle(20);
    CacheAccessResult hit = cache.access(0x48, 20, false);
    EXPECT_TRUE(hit.hit); // same 32-byte line
    EXPECT_EQ(hit.readyCycle, 20u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(Cache, HitOnRefillingLineWaitsForFill)
{
    DataCache cache(smallCache(2));
    cache.beginCycle(1);
    cache.access(0x40, 1, false); // refill lands at 11
    CacheAccessResult hit = cache.access(0x40, 1, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.readyCycle, 11u);
}

TEST(Cache, TwoWayAssociativityAvoidsConflict)
{
    // 256B 2-way with 32B lines -> 4 sets; addresses 0 and 128 map to
    // set 0 and coexist.
    DataCache cache(smallCache(2));
    cache.beginCycle(1);
    cache.access(0, 1, false);
    cache.beginCycle(30);
    cache.access(128, 30, false);
    cache.beginCycle(60);
    EXPECT_TRUE(cache.access(0, 60, false).hit);
    cache.beginCycle(61);
    EXPECT_TRUE(cache.access(128, 61, false).hit);
}

TEST(Cache, DirectMappedConflicts)
{
    // Direct-mapped: 8 sets; addresses 0 and 256 collide.
    DataCache cache(smallCache(1));
    cache.beginCycle(1);
    cache.access(0, 1, false);
    cache.beginCycle(30);
    cache.access(256, 30, false); // evicts line 0
    cache.beginCycle(60);
    EXPECT_FALSE(cache.access(0, 60, false).hit);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way set: fill both ways, touch way A, insert third line ->
    // way B (LRU) must be evicted.
    DataCache cache(smallCache(2));
    cache.beginCycle(1);
    cache.access(0, 1, false); // A
    cache.beginCycle(30);
    cache.access(128, 30, false); // B
    cache.beginCycle(60);
    EXPECT_TRUE(cache.access(0, 60, false).hit); // touch A
    cache.beginCycle(90);
    cache.access(256, 90, false); // evicts B
    cache.beginCycle(120);
    EXPECT_TRUE(cache.access(0, 120, false).hit);
    cache.beginCycle(121);
    EXPECT_FALSE(cache.access(128, 121, false).hit);
}

TEST(Cache, SecondMissBlocksService)
{
    DataCache cache(smallCache(2));
    cache.beginCycle(1);
    cache.access(0, 1, false); // refill until 11
    CacheAccessResult second = cache.access(64, 1, false);
    EXPECT_FALSE(second.hit);
    // Second refill queues behind the first.
    EXPECT_EQ(second.readyCycle, 21u);
    // Cache refuses all service until both lands.
    cache.beginCycle(5);
    EXPECT_FALSE(cache.canAccept(5));
    cache.beginCycle(20);
    EXPECT_FALSE(cache.canAccept(20));
    cache.beginCycle(21);
    EXPECT_TRUE(cache.canAccept(21));
}

TEST(Cache, SingleMissDoesNotBlockOtherLines)
{
    DataCache cache(smallCache(2));
    cache.beginCycle(1);
    cache.access(0, 1, false); // outstanding refill
    EXPECT_TRUE(cache.canAccept(1));
    cache.beginCycle(2);
    EXPECT_TRUE(cache.canAccept(2));
}

TEST(Cache, PortLimitPerCycle)
{
    CacheConfig cfg = smallCache(2);
    cfg.ports = 2;
    DataCache cache(cfg);
    cache.beginCycle(1);
    EXPECT_TRUE(cache.canAccept(1));
    cache.access(0, 1, false);
    EXPECT_TRUE(cache.canAccept(1));
    cache.access(0, 1, false);
    EXPECT_FALSE(cache.canAccept(1));
    cache.beginCycle(2);
    EXPECT_TRUE(cache.canAccept(2));
}

TEST(Cache, ResetClearsLinesKeepsStats)
{
    DataCache cache(smallCache(2));
    cache.beginCycle(1);
    cache.access(0, 1, false);
    cache.reset();
    cache.beginCycle(10);
    EXPECT_FALSE(cache.access(0, 10, false).hit);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, StatsReport)
{
    DataCache cache(smallCache(2));
    cache.beginCycle(1);
    cache.access(0, 1, false);
    cache.noteRejection();
    StatsRegistry registry;
    cache.reportStats(registry, "dcache");
    EXPECT_DOUBLE_EQ(registry.get("dcache.misses"), 1.0);
    EXPECT_DOUBLE_EQ(registry.get("dcache.rejections"), 1.0);
}

TEST(Cache, BadGeometryIsRejected)
{
    CacheConfig cfg = smallCache(2);
    cfg.sizeBytes = 300; // not a power of two
    EXPECT_DEATH(DataCache{cfg}, "2\\^n");
}

TEST(CachePartitioning, ThreadsAreIsolated)
{
    CacheConfig cfg = smallCache(2);
    cfg.partitions = 2;
    DataCache cache(cfg);

    // Thread 0 warms a line; thread 1 accessing the same address
    // misses (its partition is separate) and must not evict thread
    // 0's copy.
    cache.beginCycle(1);
    cache.access(0x40, 1, false, 0);
    cache.beginCycle(30);
    EXPECT_FALSE(cache.access(0x40, 30, false, 1).hit);
    cache.beginCycle(60);
    EXPECT_TRUE(cache.access(0x40, 60, false, 0).hit);
    cache.beginCycle(61);
    EXPECT_TRUE(cache.access(0x40, 61, false, 1).hit);
}

TEST(CachePartitioning, CapacityShrinksPerThread)
{
    // 256 B, 2-way, 32 B lines -> 4 sets. With 2 partitions each
    // thread has 2 sets = 4 lines; a 5-line working set thrashes
    // partitioned but fits the uniform cache (8 lines).
    CacheConfig uniform_cfg = smallCache(2);
    CacheConfig part_cfg = smallCache(2);
    part_cfg.partitions = 2;
    DataCache uniform(uniform_cfg);
    DataCache partitioned(part_cfg);

    Cycle now = 0;
    for (int pass = 0; pass < 4; ++pass) {
        for (Addr addr = 0; addr < 5 * 32; addr += 32) {
            now += 40;
            uniform.beginCycle(now);
            uniform.access(addr, now, false, 0);
            partitioned.beginCycle(now);
            partitioned.access(addr, now, false, 0);
        }
    }
    EXPECT_LT(uniform.misses(), partitioned.misses());
}

TEST(CachePartitioning, SharedCacheIgnoresThreadId)
{
    DataCache cache(smallCache(2));
    cache.beginCycle(1);
    cache.access(0x40, 1, false, 0);
    cache.beginCycle(30);
    EXPECT_TRUE(cache.access(0x40, 30, false, 3).hit);
}

TEST(CachePartitioning, UnevenPartitionCountWorks)
{
    // 4 sets, 3 partitions: one set per partition, one set unused.
    CacheConfig cfg = smallCache(2);
    cfg.partitions = 3;
    DataCache cache(cfg);
    cache.beginCycle(1);
    cache.access(0, 1, false, 2);
    cache.beginCycle(30);
    EXPECT_TRUE(cache.access(0, 30, false, 2).hit);
}

TEST(CachePartitioning, TooManyPartitionsPanics)
{
    CacheConfig cfg = smallCache(2); // 4 sets
    cfg.partitions = 5;
    EXPECT_DEATH(DataCache{cfg}, "partitions");
}

/** Geometry sweep: hit rate of a strided scan behaves as expected
 *  for every (ways, lineBytes) combination. */
struct GeometryParam
{
    std::uint32_t ways;
    std::uint32_t line;
};

class CacheGeometry : public ::testing::TestWithParam<GeometryParam>
{
};

TEST_P(CacheGeometry, SequentialScanMissesOncePerLine)
{
    CacheConfig cfg;
    cfg.sizeBytes = 8192;
    cfg.lineBytes = GetParam().line;
    cfg.ways = GetParam().ways;
    cfg.missPenalty = 1;
    cfg.ports = 1;
    DataCache cache(cfg);

    // One full pass over 4 KB (fits in the cache): one miss per line.
    Cycle now = 0;
    for (Addr addr = 0; addr < 4096; addr += 8) {
        now += 40; // far apart; refills never overlap
        cache.beginCycle(now);
        cache.access(addr, now, false);
    }
    EXPECT_EQ(cache.misses(), 4096u / cfg.lineBytes);

    // Second pass: all hits.
    std::uint64_t misses_before = cache.misses();
    for (Addr addr = 0; addr < 4096; addr += 8) {
        now += 40;
        cache.beginCycle(now);
        EXPECT_TRUE(cache.access(addr, now, false).hit);
    }
    EXPECT_EQ(cache.misses(), misses_before);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(GeometryParam{1, 32}, GeometryParam{2, 32},
                      GeometryParam{4, 32}, GeometryParam{1, 64},
                      GeometryParam{2, 64}, GeometryParam{2, 16}));

} // namespace
} // namespace sdsp

/**
 * @file
 * Unit tests for the functional reference interpreter, including the
 * static register partitioning and multithreaded execution.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "isa/interpreter.hh"

namespace sdsp
{
namespace
{

TEST(Interpreter, RegistersStartZero)
{
    ProgramBuilder b;
    b.halt();
    Interpreter interp(b.finish(), 4);
    for (unsigned t = 0; t < 4; ++t) {
        for (unsigned r = 0; r < 32; ++r)
            EXPECT_EQ(interp.reg(t, static_cast<RegIndex>(r)), 0u);
    }
}

TEST(Interpreter, PartitionSizes)
{
    ProgramBuilder b;
    b.halt();
    Program prog = b.finish();
    EXPECT_EQ(Interpreter(prog, 1).registersPerThread(), 128u);
    EXPECT_EQ(Interpreter(prog, 2).registersPerThread(), 64u);
    EXPECT_EQ(Interpreter(prog, 3).registersPerThread(), 42u);
    EXPECT_EQ(Interpreter(prog, 4).registersPerThread(), 32u);
    EXPECT_EQ(Interpreter(prog, 5).registersPerThread(), 25u);
    EXPECT_EQ(Interpreter(prog, 6).registersPerThread(), 21u);
}

TEST(Interpreter, RegisterOutsidePartitionPanics)
{
    ProgramBuilder b;
    b.ldi(40, 1); // r40 is fine for 1-2 threads, not for 4
    b.halt();
    Program prog = b.finish();

    Interpreter ok(prog, 2);
    EXPECT_TRUE(ok.run());

    Interpreter bad(prog, 4);
    EXPECT_DEATH(bad.run(), "partition");
}

TEST(Interpreter, ThreadsHaveIndependentRegisters)
{
    ProgramBuilder b;
    b.tid(1);
    b.addi(1, 1, 100);
    b.halt();
    Interpreter interp(b.finish(), 3);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 1), 100u);
    EXPECT_EQ(interp.reg(1, 1), 101u);
    EXPECT_EQ(interp.reg(2, 1), 102u);
}

TEST(Interpreter, ThreadsShareMemory)
{
    ProgramBuilder b;
    b.array("cells", 8);
    // Each thread stores tid+1 to cells[tid].
    b.la(1, "cells");
    b.tid(2);
    b.slli(3, 2, 3);
    b.add(1, 1, 3);
    b.addi(2, 2, 1);
    b.st(2, 0, 1);
    b.halt();
    Interpreter interp(b.finish(), 4);
    ASSERT_TRUE(interp.run());
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(readWord(interp.memory(), t * 8), t + 1);
}

TEST(Interpreter, SpinFlagSynchronization)
{
    // Thread 0 publishes a value; thread 1 spins for the flag then
    // reads the value. Round-robin stepping must make progress.
    ProgramBuilder b;
    b.dword("value", 0);
    b.dword("flag", 0);
    b.tid(2);
    b.bne(2, 0, "consumer"); // r0 == 0
    // producer (thread 0)
    b.ldi(3, 234);
    b.la(4, "value");
    b.st(3, 0, 4);
    b.ldi(3, 1);
    b.la(4, "flag");
    b.st(3, 0, 4);
    b.halt();
    b.label("consumer");
    b.la(4, "flag");
    b.label("spinloop");
    b.spin();
    b.ld(3, 0, 4);
    b.beq(3, 0, "spinloop");
    b.la(4, "value");
    b.ld(5, 0, 4);
    b.halt();
    Interpreter interp(b.finish(), 2);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(1, 5), 234u);
}

TEST(Interpreter, HaltStopsOnlyItsThread)
{
    ProgramBuilder b;
    b.tid(1);
    b.beq(1, 0, "quit");
    b.ldi(2, 5);
    b.label("quit");
    b.halt();
    Interpreter interp(b.finish(), 2);
    interp.stepThread(0); // tid
    interp.stepThread(0); // beq taken
    interp.stepThread(0); // halt
    EXPECT_TRUE(interp.halted(0));
    EXPECT_FALSE(interp.halted(1));
    EXPECT_FALSE(interp.finished());
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(1, 2), 5u);
}

TEST(Interpreter, RunBudgetDetectsLivelock)
{
    ProgramBuilder b;
    b.label("forever");
    b.j("forever");
    Interpreter interp(b.finish(), 1);
    EXPECT_FALSE(interp.run(1000));
}

TEST(Interpreter, InstructionCounts)
{
    ProgramBuilder b;
    b.ldi(1, 3);
    b.label("top");
    b.addi(1, 1, -1);
    b.bne(1, 0, "top");
    b.halt();
    Interpreter interp(b.finish(), 1);
    ASSERT_TRUE(interp.run());
    // ldi + 3*(addi+bne) + halt = 8
    EXPECT_EQ(interp.instructionCount(0), 8u);
    EXPECT_EQ(interp.totalInstructionCount(), 8u);
}

TEST(Interpreter, MisalignedAccessFaults)
{
    // Bad accesses are contained architectural faults, not process
    // aborts: fuzz-minimization candidates run through here.
    ProgramBuilder b;
    b.dword("w", 0);
    b.ldi(1, 4);
    b.ld(2, 0, 1); // address 4: misaligned
    b.halt();
    Interpreter interp(b.finish(), 1);
    EXPECT_TRUE(interp.run());
    EXPECT_TRUE(interp.finished());
    EXPECT_TRUE(interp.faulted(0));
    EXPECT_TRUE(interp.anyFaulted());
    EXPECT_NE(interp.faultMessage().find("misaligned"),
              std::string::npos);
}

TEST(Interpreter, OutOfRangeAccessFaults)
{
    ProgramBuilder b;
    b.dword("w", 0);
    b.ldi(1, 1); // 1 word of memory; address 8 is out of range
    b.slli(1, 1, 3);
    b.ld(2, 0, 1);
    b.halt();
    Interpreter interp(b.finish(), 1);
    EXPECT_TRUE(interp.run());
    EXPECT_TRUE(interp.faulted(0));
    // The faulting load writes nothing.
    EXPECT_EQ(interp.reg(0, 2), 0u);
}

TEST(Interpreter, RunawayPcFaults)
{
    // A program whose control walks past the image end faults rather
    // than reading out of bounds.
    ProgramBuilder b;
    b.ldi(1, 0); // no halt: pc runs off the end
    Interpreter interp(b.finish(), 1);
    EXPECT_TRUE(interp.run());
    EXPECT_TRUE(interp.faulted(0));
    EXPECT_NE(interp.faultMessage().find("past the end"),
              std::string::npos);
}

TEST(Interpreter, ClassCountsCharacterizeWorkload)
{
    ProgramBuilder b;
    b.dword("w", 3);
    b.la(1, "w");     // LDI (IntAlu)
    b.ld(2, 0, 1);    // Load
    b.mul(3, 2, 2);   // IntMul
    b.fadd(4, 3, 3);  // FpAdd
    b.st(4, 0, 1);    // Store
    b.halt();         // Ctrl
    Interpreter interp(b.finish(), 1);
    ASSERT_TRUE(interp.run());
    auto count = [&](FuClass cls) {
        return interp.classCounts()[static_cast<unsigned>(cls)];
    };
    EXPECT_EQ(count(FuClass::IntAlu), 1u);
    EXPECT_EQ(count(FuClass::Load), 1u);
    EXPECT_EQ(count(FuClass::IntMul), 1u);
    EXPECT_EQ(count(FuClass::FpAdd), 1u);
    EXPECT_EQ(count(FuClass::Store), 1u);
    EXPECT_EQ(count(FuClass::Ctrl), 1u);
    EXPECT_EQ(count(FuClass::FpDiv), 0u);

    std::uint64_t total = 0;
    for (std::uint64_t value : interp.classCounts())
        total += value;
    EXPECT_EQ(total, interp.totalInstructionCount());
}

TEST(Interpreter, SetRegSeedsState)
{
    ProgramBuilder b;
    b.add(2, 1, 1);
    b.halt();
    Interpreter interp(b.finish(), 1);
    interp.setReg(0, 1, 21);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.reg(0, 2), 42u);
}

} // namespace
} // namespace sdsp

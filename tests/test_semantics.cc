/**
 * @file
 * Unit tests for the architectural semantics shared by the
 * interpreter and the pipeline.
 */

#include <bit>

#include <gtest/gtest.h>

#include "isa/semantics.hh"

namespace sdsp
{
namespace
{

RegVal
fp(double value)
{
    return std::bit_cast<RegVal>(value);
}

double
asD(RegVal raw)
{
    return std::bit_cast<double>(raw);
}

RegVal
run(Opcode op, RegVal s1 = 0, RegVal s2 = 0, std::int32_t imm = 0)
{
    Instruction inst;
    inst.op = op;
    inst.imm = imm;
    return evalCompute(inst, s1, s2, /*tid=*/2, /*nthreads=*/4);
}

TEST(IntOps, Arithmetic)
{
    EXPECT_EQ(run(Opcode::ADD, 3, 4), 7u);
    EXPECT_EQ(static_cast<std::int64_t>(run(Opcode::SUB, 3, 4)), -1);
    EXPECT_EQ(run(Opcode::MUL, 7, 6), 42u);
    EXPECT_EQ(run(Opcode::AND, 0b1100, 0b1010), 0b1000u);
    EXPECT_EQ(run(Opcode::OR, 0b1100, 0b1010), 0b1110u);
    EXPECT_EQ(run(Opcode::XOR, 0b1100, 0b1010), 0b0110u);
}

TEST(IntOps, ShiftsAndCompares)
{
    EXPECT_EQ(run(Opcode::SLL, 1, 8), 256u);
    EXPECT_EQ(run(Opcode::SRL, 256, 8), 1u);
    EXPECT_EQ(static_cast<std::int64_t>(
                  run(Opcode::SRA, static_cast<RegVal>(-256), 4)),
              -16);
    EXPECT_EQ(run(Opcode::SLT, static_cast<RegVal>(-1), 0), 1u);
    EXPECT_EQ(run(Opcode::SLTU, static_cast<RegVal>(-1), 0), 0u);
    // Shift amounts use the low 6 bits.
    EXPECT_EQ(run(Opcode::SLL, 1, 64), 1u);
}

TEST(IntOps, Immediates)
{
    EXPECT_EQ(static_cast<std::int64_t>(run(Opcode::ADDI, 10, 0, -3)),
              7);
    EXPECT_EQ(run(Opcode::SLTI, 5, 0, 6), 1u);
    EXPECT_EQ(run(Opcode::SLLI, 3, 0, 4), 48u);
    EXPECT_EQ(run(Opcode::LDI, 0, 0, -100),
              static_cast<RegVal>(-100));
}

TEST(IntOps, LogicalImmediatesZeroExtend)
{
    // ORI with the raw field 0x3FF must OR in 1023, not sign-extend
    // to -1.
    EXPECT_EQ(run(Opcode::ORI, 0, 0, 0x3FF), 1023u);
    EXPECT_EQ(run(Opcode::ANDI, ~0ull, 0, 0x3FF), 1023u);
    EXPECT_EQ(run(Opcode::XORI, 0, 0, 0x200), 512u);
}

TEST(IntOps, LuiComposesWithOri)
{
    RegVal high = run(Opcode::LUI, 0, 0, 0x1234);
    EXPECT_EQ(high, static_cast<RegVal>(0x1234) << 10);
    EXPECT_EQ(run(Opcode::ORI, high, 0, 0x3F),
              (static_cast<RegVal>(0x1234) << 10) | 0x3F);
}

TEST(IntOps, DivideAndRemainder)
{
    EXPECT_EQ(run(Opcode::DIV, 42, 5), 8u);
    EXPECT_EQ(run(Opcode::REM, 42, 5), 2u);
    EXPECT_EQ(static_cast<std::int64_t>(
                  run(Opcode::DIV, static_cast<RegVal>(-7), 2)),
              -3);
    // Hardware-style divide-by-zero: no trap.
    EXPECT_EQ(run(Opcode::DIV, 42, 0), 0u);
    EXPECT_EQ(run(Opcode::REM, 42, 0), 42u);
}

TEST(ThreadOps, TidAndNth)
{
    EXPECT_EQ(run(Opcode::TID), 2u);
    EXPECT_EQ(run(Opcode::NTH), 4u);
}

TEST(FpOps, Arithmetic)
{
    EXPECT_DOUBLE_EQ(asD(run(Opcode::FADD, fp(1.5), fp(2.25))), 3.75);
    EXPECT_DOUBLE_EQ(asD(run(Opcode::FSUB, fp(1.5), fp(2.25))), -0.75);
    EXPECT_DOUBLE_EQ(asD(run(Opcode::FMUL, fp(3.0), fp(0.5))), 1.5);
    EXPECT_DOUBLE_EQ(asD(run(Opcode::FDIV, fp(1.0), fp(4.0))), 0.25);
    EXPECT_DOUBLE_EQ(asD(run(Opcode::FSQRT, fp(9.0))), 3.0);
    EXPECT_DOUBLE_EQ(asD(run(Opcode::FNEG, fp(2.0))), -2.0);
    EXPECT_DOUBLE_EQ(asD(run(Opcode::FABS, fp(-2.0))), 2.0);
}

TEST(FpOps, Compares)
{
    EXPECT_EQ(run(Opcode::FCMPLT, fp(1.0), fp(2.0)), 1u);
    EXPECT_EQ(run(Opcode::FCMPLT, fp(2.0), fp(2.0)), 0u);
    EXPECT_EQ(run(Opcode::FCMPLE, fp(2.0), fp(2.0)), 1u);
    EXPECT_EQ(run(Opcode::FCMPEQ, fp(2.0), fp(2.0)), 1u);
    EXPECT_EQ(run(Opcode::FCMPEQ, fp(2.0), fp(2.1)), 0u);
}

TEST(FpOps, Conversions)
{
    EXPECT_DOUBLE_EQ(asD(run(Opcode::CVTIF, static_cast<RegVal>(-3))),
                     -3.0);
    EXPECT_EQ(static_cast<std::int64_t>(
                  run(Opcode::CVTFI, fp(-3.75))),
              -3); // truncation toward zero
}

TEST(Branches, Conditions)
{
    auto taken = [](Opcode op, std::int64_t a, std::int64_t b) {
        Instruction inst;
        inst.op = op;
        return evalBranchTaken(inst, static_cast<RegVal>(a),
                               static_cast<RegVal>(b));
    };
    EXPECT_TRUE(taken(Opcode::BEQ, 5, 5));
    EXPECT_FALSE(taken(Opcode::BEQ, 5, 6));
    EXPECT_TRUE(taken(Opcode::BNE, 5, 6));
    EXPECT_TRUE(taken(Opcode::BLT, -1, 0));
    EXPECT_FALSE(taken(Opcode::BLT, 0, 0));
    EXPECT_TRUE(taken(Opcode::BGE, 0, 0));
    EXPECT_FALSE(taken(Opcode::BGE, -1, 0));
}

TEST(Memory, EffectiveAddress)
{
    Instruction load = Instruction::makeI(Opcode::LD, 1, 2, -8);
    EXPECT_EQ(evalEffectiveAddress(load, 100), 92u);
    Instruction store = Instruction::makeB(Opcode::ST, 2, 1, 16);
    EXPECT_EQ(evalEffectiveAddress(store, 100), 116u);
}

TEST(Link, JalLinkValue)
{
    EXPECT_EQ(evalLinkValue(41), 42u);
}

TEST(Semantics, NonComputeOpcodePanics)
{
    Instruction inst = Instruction::makeB(Opcode::BEQ, 0, 0, 0);
    EXPECT_DEATH(evalCompute(inst, 0, 0, 0, 1), "non-compute");
    Instruction add = Instruction::makeR(Opcode::ADD, 0, 0, 0);
    EXPECT_DEATH(evalBranchTaken(add, 0, 0), "non-branch");
}

} // namespace
} // namespace sdsp

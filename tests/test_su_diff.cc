/**
 * @file
 * Differential test for the indexed SchedulingUnit.
 *
 * The production SU answers every hot-path query from incremental
 * indices (tag map, newest-writer table, waiter chains, unbuffered
 * store lists). This test re-implements the SU as the obvious
 * scan-over-the-window model, drives both with the same randomized
 * dispatch / broadcast / squash / buffer / commit sequences, and
 * checks after every operation that all externally visible behaviour
 * is identical: entry lookup and contents, newest-writer answers,
 * both memory-disambiguation queries, commit selection, occupancy and
 * iteration order. Any index that drifts out of sync with the linear
 * window shows up here as a divergence.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/su.hh"

namespace sdsp
{
namespace
{

/**
 * The scan-based reference model: a linear window of blocks; every
 * query walks it. Semantics are the pre-index SU's.
 */
class ReferenceSu
{
  public:
    ReferenceSu(unsigned num_blocks, unsigned block_size)
        : capacityBlocks(num_blocks), blockSize(block_size)
    {
    }

    bool hasSpace() const { return blocks.size() < capacityBlocks; }
    bool empty() const { return blocks.empty(); }
    const std::vector<SuBlock> &contents() const { return blocks; }

    unsigned
    occupancy() const
    {
        unsigned count = 0;
        for (const auto &block : blocks) {
            for (const auto &entry : block.entries) {
                if (entry.valid)
                    ++count;
            }
        }
        return count;
    }

    void
    dispatch(SuBlock block)
    {
        ASSERT_TRUE(hasSpace());
        ASSERT_LE(block.entries.size(), blockSize);
        blocks.push_back(std::move(block));
    }

    const SuEntry *
    findNewestWriter(ThreadId tid, RegIndex reg) const
    {
        for (auto bit = blocks.rbegin(); bit != blocks.rend(); ++bit) {
            if (bit->tid != tid)
                continue;
            for (auto eit = bit->entries.rbegin();
                 eit != bit->entries.rend(); ++eit) {
                if (eit->valid && eit->inst.writesRd() &&
                    eit->inst.rd == reg) {
                    return &*eit;
                }
            }
        }
        return nullptr;
    }

    SuEntry *
    findBySeq(Tag seq)
    {
        for (auto &block : blocks) {
            for (auto &entry : block.entries) {
                if (entry.valid && entry.seq == seq)
                    return &entry;
            }
        }
        return nullptr;
    }

    void
    broadcast(Tag seq, RegVal value, Cycle now, bool bypassing)
    {
        for (auto &block : blocks) {
            for (auto &entry : block.entries) {
                if (!entry.valid ||
                    entry.state != EntryState::Waiting) {
                    continue;
                }
                bool woke = false;
                for (Operand *op : {&entry.src1, &entry.src2}) {
                    if (!op->ready && op->tag == seq) {
                        op->ready = true;
                        op->value = value;
                        woke = true;
                    }
                }
                if (woke && entry.operandsReady()) {
                    entry.state = EntryState::Ready;
                    entry.earliestIssue =
                        std::max(entry.earliestIssue,
                                 bypassing ? now : now + 1);
                }
            }
        }
    }

    unsigned
    squashThread(ThreadId tid, Tag after)
    {
        unsigned squashed = 0;
        for (auto &block : blocks) {
            if (block.tid != tid)
                continue;
            for (auto &entry : block.entries) {
                if (entry.valid && entry.seq > after) {
                    entry.valid = false;
                    ++squashed;
                }
            }
        }
        for (auto it = blocks.begin(); it != blocks.end();) {
            bool any = false;
            for (const auto &entry : it->entries)
                any |= entry.valid;
            if (it->tid == tid && it->blockSeq > after && !any)
                it = blocks.erase(it);
            else
                ++it;
        }
        return squashed;
    }

    CommitSelection
    selectCommit(unsigned window_blocks) const
    {
        std::size_t window =
            std::min<std::size_t>(window_blocks, blocks.size());
        for (std::size_t i = 0; i < window; ++i) {
            if (!blocks[i].complete())
                continue;
            bool blocked = false;
            for (std::size_t j = 0; j < i; ++j) {
                if (!blocks[j].complete() &&
                    blocks[j].tid == blocks[i].tid) {
                    blocked = true;
                    break;
                }
            }
            if (!blocked)
                return {true, i};
        }
        return {false, 0};
    }

    SuBlock
    removeBlock(std::size_t block_index)
    {
        SuBlock block = std::move(blocks[block_index]);
        blocks.erase(blocks.begin() +
                     static_cast<std::ptrdiff_t>(block_index));
        return block;
    }

    void
    markStoreBuffered(Tag seq)
    {
        SuEntry *entry = findBySeq(seq);
        ASSERT_NE(entry, nullptr);
        entry->storeBuffered = true;
    }

    bool
    hasOlderUnresolvedStore(ThreadId tid, Tag load_seq) const
    {
        for (const auto &block : blocks) {
            for (const auto &entry : block.entries) {
                if (entry.valid && entry.tid == tid &&
                    entry.inst.isStore() && !entry.storeBuffered &&
                    entry.seq < load_seq) {
                    return true;
                }
            }
        }
        return false;
    }

    bool
    hasOlderUnbufferedStore(Tag seq) const
    {
        for (const auto &block : blocks) {
            for (const auto &entry : block.entries) {
                if (entry.valid && entry.inst.isStore() &&
                    !entry.storeBuffered && entry.seq < seq) {
                    return true;
                }
            }
        }
        return false;
    }

  private:
    unsigned capacityBlocks;
    unsigned blockSize;
    std::vector<SuBlock> blocks;
};

/** Deterministic xorshift RNG (no libc rand dependence). */
struct Rng
{
    std::uint64_t state;

    explicit Rng(std::uint64_t seed) : state(seed | 1) {}

    std::uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }

    /** Uniform in [0, bound). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    bool chance(unsigned percent) { return below(100) < percent; }
};

constexpr unsigned kBlocks = 4;
constexpr unsigned kBlockSize = 4;
constexpr unsigned kThreads = 4;
constexpr unsigned kRegs = 16;

/** Drives the production SU and the reference in lock-step. */
class DiffHarness
{
  public:
    explicit DiffHarness(std::uint64_t seed)
        : su(kBlocks, kBlockSize, kThreads, kRegs),
          ref(kBlocks, kBlockSize),
          rng(seed)
    {
    }

    void
    run(unsigned operations)
    {
        for (unsigned i = 0; i < operations; ++i) {
            step();
            if (HasFatalFailure())
                return;
            compareAll(i);
            if (HasFatalFailure() || HasNonfatalFailure()) {
                ADD_FAILURE() << "divergence after operation " << i;
                return;
            }
        }
    }

  private:
    void
    step()
    {
        ++now;
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2:
            doDispatch();
            break;
          case 3:
          case 4:
          case 5:
            doComplete();
            break;
          case 6:
            doBufferStore();
            break;
          case 7:
            doSquash();
            break;
          default:
            doCommit();
            break;
        }
    }

    void
    doDispatch()
    {
        if (!su.hasSpace())
            return;
        auto tid = static_cast<ThreadId>(rng.below(kThreads));
        unsigned count = 1 + rng.below(kBlockSize);

        SuBlock block = su.acquireBlock();
        block.tid = tid;
        block.blockSeq = nextSeq;
        for (unsigned k = 0; k < count; ++k) {
            SuEntry entry;
            entry.valid = true;
            entry.seq = nextSeq++;
            entry.tid = tid;
            entry.pc = static_cast<InstAddr>(entry.seq);
            if (rng.chance(25)) {
                // A store: reads two sources, writes no register.
                entry.inst = Instruction::makeB(
                    Opcode::ST, static_cast<RegIndex>(rng.below(kRegs)),
                    static_cast<RegIndex>(rng.below(kRegs)), 0);
            } else {
                entry.inst = Instruction::makeR(
                    Opcode::ADD, static_cast<RegIndex>(rng.below(kRegs)),
                    0, 0);
            }
            entry.src1 = makeOperand();
            entry.src2 = makeOperand();
            entry.state = entry.operandsReady() ? EntryState::Ready
                                                : EntryState::Waiting;
            entry.earliestIssue = now + 1;
            block.entries.push_back(entry);
        }

        SuBlock copy;
        copy.tid = block.tid;
        copy.blockSeq = block.blockSeq;
        copy.entries = block.entries;
        ref.dispatch(std::move(copy));
        su.dispatch(std::move(block));
    }

    Operand
    makeOperand()
    {
        Operand operand;
        if (rng.chance(40) && nextSeq > 1) {
            // Wait on some earlier tag: usually live, sometimes long
            // gone (exercises stale-tag broadcast on both models).
            Tag target = 1 + rng.below(nextSeq - 1);
            const SuEntry *producer = ref.findBySeq(target);
            if (producer && producer->state != EntryState::Done) {
                operand.ready = false;
                operand.tag = target;
                return operand;
            }
            if (rng.chance(20)) {
                operand.ready = false;
                operand.tag = target; // stale or completed producer
                return operand;
            }
        }
        operand.ready = true;
        operand.value = rng.next() & 0xffff;
        return operand;
    }

    void
    doComplete()
    {
        // Complete one ready non-store entry: mark Done and
        // broadcast its (random) result to both models.
        std::vector<Tag> ready;
        su.forEachOldestFirst([&](SuEntry &entry) {
            if (entry.state == EntryState::Ready &&
                !entry.inst.isStore()) {
                ready.push_back(entry.seq);
            }
            return true;
        });
        if (ready.empty())
            return;
        Tag seq = ready[rng.below(ready.size())];
        RegVal value = rng.next() & 0xffff;
        bool bypassing = rng.chance(50);

        su.findBySeq(seq)->state = EntryState::Done;
        su.findBySeq(seq)->result = value;
        ref.findBySeq(seq)->state = EntryState::Done;
        ref.findBySeq(seq)->result = value;
        su.broadcast(seq, value, now, bypassing);
        ref.broadcast(seq, value, now, bypassing);
    }

    void
    doBufferStore()
    {
        std::vector<Tag> stores;
        su.forEachOldestFirst([&](SuEntry &entry) {
            if (entry.inst.isStore() && !entry.storeBuffered &&
                entry.state == EntryState::Ready) {
                stores.push_back(entry.seq);
            }
            return true;
        });
        if (stores.empty())
            return;
        Tag seq = stores[rng.below(stores.size())];
        su.markStoreBuffered(*su.findBySeq(seq));
        su.findBySeq(seq)->state = EntryState::Done;
        ref.markStoreBuffered(seq);
        ref.findBySeq(seq)->state = EntryState::Done;
    }

    void
    doSquash()
    {
        if (nextSeq <= 1)
            return;
        auto tid = static_cast<ThreadId>(rng.below(kThreads));
        Tag after = rng.below(nextSeq);
        std::vector<Tag> squashed;
        unsigned a = su.squashThread(tid, after, &squashed);
        unsigned b = ref.squashThread(tid, after);
        EXPECT_EQ(a, b) << "squash count differs (tid " << tid
                        << ", after " << after << ")";
        EXPECT_EQ(squashed.size(), a);
        // An occasional stale broadcast of a squashed tag: neither
        // model may wake the dead or corrupt survivors.
        if (!squashed.empty() && rng.chance(50)) {
            Tag stale = squashed[rng.below(squashed.size())];
            RegVal value = rng.next() & 0xffff;
            su.broadcast(stale, value, now, true);
            ref.broadcast(stale, value, now, true);
        }
    }

    void
    doCommit()
    {
        CommitSelection a = su.selectCommit(kBlocks);
        CommitSelection b = ref.selectCommit(kBlocks);
        EXPECT_EQ(a.found, b.found);
        if (!a.found || a.found != b.found)
            return;
        EXPECT_EQ(a.blockIndex, b.blockIndex);
        SuBlock mine = su.removeBlock(a.blockIndex);
        SuBlock theirs = ref.removeBlock(b.blockIndex);
        EXPECT_EQ(mine.tid, theirs.tid);
        EXPECT_EQ(mine.blockSeq, theirs.blockSeq);
        su.recycleBlock(std::move(mine));
    }

    void
    compareEntries(const SuEntry &a, const SuEntry &b)
    {
        EXPECT_EQ(a.seq, b.seq);
        EXPECT_EQ(a.tid, b.tid);
        EXPECT_EQ(a.state, b.state);
        EXPECT_EQ(a.src1.ready, b.src1.ready);
        EXPECT_EQ(a.src2.ready, b.src2.ready);
        if (a.src1.ready && b.src1.ready) {
            EXPECT_EQ(a.src1.value, b.src1.value);
        }
        if (a.src2.ready && b.src2.ready) {
            EXPECT_EQ(a.src2.value, b.src2.value);
        }
        EXPECT_EQ(a.earliestIssue, b.earliestIssue);
        EXPECT_EQ(a.storeBuffered, b.storeBuffered);
    }

    void
    compareAll(unsigned operation)
    {
        SCOPED_TRACE(testing::Message() << "operation " << operation);

        EXPECT_EQ(su.occupancy(), ref.occupancy());
        EXPECT_EQ(su.contents().size(), ref.contents().size());

        // Every tag ever issued: same existence, same contents.
        for (Tag seq = 1; seq < nextSeq; ++seq) {
            SuEntry *mine = su.findBySeq(seq);
            SuEntry *theirs = ref.findBySeq(seq);
            ASSERT_EQ(mine == nullptr, theirs == nullptr)
                << "findBySeq(" << seq << ") presence differs";
            if (mine)
                compareEntries(*mine, *theirs);
        }

        // The full rename-table grid.
        for (unsigned t = 0; t < kThreads; ++t) {
            for (unsigned r = 0; r < kRegs; ++r) {
                const SuEntry *mine = su.findNewestWriter(
                    static_cast<ThreadId>(t),
                    static_cast<RegIndex>(r));
                const SuEntry *theirs = ref.findNewestWriter(
                    static_cast<ThreadId>(t),
                    static_cast<RegIndex>(r));
                ASSERT_EQ(mine == nullptr, theirs == nullptr)
                    << "newest writer (t" << t << ", r" << r
                    << ") presence differs";
                if (mine) {
                    EXPECT_EQ(mine->seq, theirs->seq)
                        << "newest writer (t" << t << ", r" << r
                        << ")";
                }
            }
        }

        // Disambiguation queries at every interesting age.
        for (Tag seq = 1; seq <= nextSeq; ++seq) {
            for (unsigned t = 0; t < kThreads; ++t) {
                EXPECT_EQ(su.hasOlderUnresolvedStore(
                              static_cast<ThreadId>(t), seq),
                          ref.hasOlderUnresolvedStore(
                              static_cast<ThreadId>(t), seq))
                    << "unresolved-store (t" << t << ", seq " << seq
                    << ")";
            }
            EXPECT_EQ(su.hasOlderUnbufferedStore(seq),
                      ref.hasOlderUnbufferedStore(seq))
                << "unbuffered-store (seq " << seq << ")";
        }

        // Commit selection and iteration order.
        CommitSelection a = su.selectCommit(kBlocks);
        CommitSelection b = ref.selectCommit(kBlocks);
        EXPECT_EQ(a.found, b.found);
        if (a.found && b.found) {
            EXPECT_EQ(a.blockIndex, b.blockIndex);
        }

        std::vector<Tag> mine_order;
        su.forEachOldestFirst([&](SuEntry &entry) {
            mine_order.push_back(entry.seq);
            return true;
        });
        std::vector<Tag> theirs_order;
        for (const auto &block : ref.contents()) {
            for (const auto &entry : block.entries) {
                if (entry.valid)
                    theirs_order.push_back(entry.seq);
            }
        }
        EXPECT_EQ(mine_order, theirs_order);
    }

    static bool
    HasFatalFailure()
    {
        return testing::Test::HasFatalFailure();
    }
    static bool
    HasNonfatalFailure()
    {
        return testing::Test::HasNonfatalFailure();
    }

    SchedulingUnit su;
    ReferenceSu ref;
    Rng rng;
    Tag nextSeq = 1;
    Cycle now = 0;
};

TEST(SuDiff, RandomizedLockstepSeed1)
{
    DiffHarness(0x1234).run(3000);
}

TEST(SuDiff, RandomizedLockstepSeed2)
{
    DiffHarness(0xfeedbeef).run(3000);
}

TEST(SuDiff, RandomizedLockstepSeed3)
{
    DiffHarness(0x9e3779b9).run(3000);
}

TEST(SuDiff, ManyShortSequences)
{
    // Many short sequences restart from an empty window, so squash
    // and commit hit many distinct window shapes near the start of a
    // run (where off-by-one index bugs like to live).
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        DiffHarness harness(seed * 0x9E3779B97F4A7C15ull);
        harness.run(400);
        if (testing::Test::HasFailure())
            return;
    }
}

} // namespace
} // namespace sdsp

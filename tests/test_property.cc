/**
 * @file
 * Property-based pipeline validation.
 *
 * Generates random (but always-terminating) programs — ALU/FP
 * arithmetic, region-masked loads and stores, forward branches — and
 * checks the invariant that the cycle-level pipeline's final
 * architectural state (every register of every thread, plus the whole
 * memory image) is bit-identical to the functional interpreter's,
 * across the full cross-product of machine configuration axes the
 * paper studies: thread count, fetch policy, commit policy, renaming
 * scheme, bypassing and cache organization.
 *
 * Threads write only to disjoint memory regions, so every legal
 * interleaving produces the same final state and the comparison is
 * exact.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "common/random.hh"
#include "core/processor.hh"
#include "isa/interpreter.hh"

namespace sdsp
{
namespace
{

/** Registers the generator may touch (fits the 6-thread budget);
 *  r15 is reserved as the JAL/JR link register and is never
 *  clobbered by random instructions. */
constexpr RegIndex kMinReg = 3;
constexpr RegIndex kMaxReg = 14;
constexpr RegIndex kLinkReg = 15;
/** Per-thread memory region, in words (a power of two). */
constexpr unsigned kRegionWords = 16;

/**
 * Generate one random terminating program for @p threads threads.
 * With @p with_calls, a handful of leaf functions (straight-line
 * compute ending in JR on the r15 link register) are appended and
 * called from the body via JAL — covering call/return prediction and
 * recovery.
 */
Program
randomProgram(std::uint64_t seed, unsigned threads,
              unsigned body_length, bool with_calls = false)
{
    Xorshift64 rng(seed);
    ProgramBuilder b;

    std::vector<std::uint64_t> init(kRegionWords * threads);
    for (auto &word : init)
        word = rng.next();
    b.arrayOfWords("mem", init);

    auto any_reg = [&]() {
        return static_cast<RegIndex>(
            kMinReg + rng.nextBelow(kMaxReg - kMinReg + 1));
    };

    // Prologue: r2 = region base for this thread.
    b.tid(2);
    b.ldi(1, kRegionWords * 8);
    b.mul(2, 2, 1);
    b.la(1, "mem");
    b.add(2, 2, 1);
    // Seed a few registers with distinctive values.
    for (RegIndex r = kMinReg; r <= kMaxReg; ++r)
        b.ldi(r, static_cast<std::int32_t>(rng.nextBelow(1000)) - 500);

    int pending_label = -1;  // forward branch target not yet placed
    InstAddr place_after = 0;
    int label_counter = 0;
    const unsigned num_functions = with_calls ? 3 : 0;

    for (unsigned i = 0; i < body_length; ++i) {
        if (pending_label >= 0 && b.here() >= place_after) {
            b.label("fwd" + std::to_string(pending_label));
            pending_label = -1;
        }

        switch (rng.nextBelow(10)) {
          case 0:
          case 1: { // R-format integer op
            static const Opcode ops[] = {
                Opcode::ADD, Opcode::SUB, Opcode::AND, Opcode::OR,
                Opcode::XOR, Opcode::SLL, Opcode::SRL, Opcode::SRA,
                Opcode::SLT, Opcode::SLTU,
            };
            b.emit(Instruction::makeR(ops[rng.nextBelow(10)],
                                      any_reg(), any_reg(),
                                      any_reg()));
            break;
          }
          case 2: { // immediate op
            static const Opcode ops[] = {
                Opcode::ADDI, Opcode::ANDI, Opcode::ORI,
                Opcode::XORI, Opcode::SLTI, Opcode::SLLI,
                Opcode::SRLI, Opcode::SRAI,
            };
            Opcode op = ops[rng.nextBelow(8)];
            std::int32_t imm;
            if (op == Opcode::ANDI || op == Opcode::ORI ||
                op == Opcode::XORI) {
                imm = static_cast<std::int32_t>(rng.nextBelow(1024));
            } else if (op == Opcode::SLLI || op == Opcode::SRLI ||
                       op == Opcode::SRAI) {
                imm = static_cast<std::int32_t>(rng.nextBelow(64));
            } else {
                imm = static_cast<std::int32_t>(rng.nextBelow(1024)) -
                      512;
            }
            b.emit(Instruction::makeI(op, any_reg(), any_reg(), imm));
            break;
          }
          case 3: { // multiply / divide
            static const Opcode ops[] = {Opcode::MUL, Opcode::DIV,
                                         Opcode::REM};
            b.emit(Instruction::makeR(ops[rng.nextBelow(3)],
                                      any_reg(), any_reg(),
                                      any_reg()));
            break;
          }
          case 4: { // floating point on whatever bits are there
            static const Opcode ops[] = {
                Opcode::FADD, Opcode::FSUB, Opcode::FMUL,
                Opcode::FCMPLT, Opcode::FCMPLE, Opcode::CVTIF,
            };
            b.emit(Instruction::makeR(ops[rng.nextBelow(6)],
                                      any_reg(), any_reg(),
                                      any_reg()));
            break;
          }
          case 5:
          case 6: { // region-masked load
            RegIndex addr = any_reg();
            RegIndex idx = any_reg();
            b.andi(addr, idx, kRegionWords - 1);
            b.slli(addr, addr, 3);
            b.add(addr, addr, 2);
            b.ld(any_reg(), 0, addr);
            break;
          }
          case 7: { // region-masked store
            RegIndex addr = any_reg();
            b.andi(addr, addr, kRegionWords - 1);
            b.slli(addr, addr, 3);
            b.add(addr, addr, 2);
            b.st(any_reg(), 0, addr);
            break;
          }
          case 8: { // forward conditional branch
            if (pending_label < 0) {
                static const Opcode ops[] = {Opcode::BEQ, Opcode::BNE,
                                             Opcode::BLT, Opcode::BGE};
                pending_label = label_counter++;
                place_after =
                    b.here() + 2 +
                    static_cast<InstAddr>(rng.nextBelow(6));
                b.emitToLabel(
                    Instruction::makeB(ops[rng.nextBelow(4)],
                                       any_reg(), any_reg(), 0),
                    "fwd" + std::to_string(pending_label));
            }
            break;
          }
          case 9: { // SPIN / NOP filler, or a leaf call
            if (with_calls && rng.nextBelow(2)) {
                b.jal(kLinkReg, "func" + std::to_string(
                               rng.nextBelow(num_functions)));
            } else if (rng.nextBelow(2)) {
                b.spin();
            } else {
                b.nop();
            }
            break;
          }
        }
    }
    // Place any dangling forward label, then stop.
    if (pending_label >= 0)
        b.label("fwd" + std::to_string(pending_label));
    b.halt();

    // Leaf functions: straight-line compute, return through r15.
    for (unsigned f = 0; f < num_functions; ++f) {
        b.label("func" + std::to_string(f));
        for (unsigned k = 0; k < 2 + f; ++k) {
            b.emit(Instruction::makeR(
                k % 2 ? Opcode::ADD : Opcode::XOR, any_reg(),
                any_reg(), any_reg()));
        }
        b.jr(kLinkReg);
    }
    return b.finish();
}

struct PropertyParam
{
    std::uint64_t seed;
    unsigned threads;
    FetchPolicy fetch;
    CommitPolicy commit;
    RenameScheme rename;
    bool bypassing;
    std::uint32_t cacheWays;
    unsigned suEntries;
    bool withCalls = false;
    bool partitionedCache = false;
    bool finiteICache = false;
    unsigned btbBanks = 1;
};

class PipelineEquivalence
    : public ::testing::TestWithParam<PropertyParam>
{
};

TEST_P(PipelineEquivalence, MatchesInterpreterExactly)
{
    const PropertyParam &param = GetParam();
    Program prog = randomProgram(param.seed, param.threads, 120,
                                 param.withCalls);

    MachineConfig cfg;
    cfg.numThreads = param.threads;
    cfg.fetchPolicy = param.fetch;
    cfg.commitPolicy = param.commit;
    cfg.renameScheme = param.rename;
    cfg.bypassing = param.bypassing;
    cfg.dcache.ways = param.cacheWays;
    cfg.suEntries = param.suEntries;
    cfg.maxCycles = 2'000'000;
    if (param.partitionedCache)
        cfg.dcache.partitions = param.threads;
    cfg.perfectICache = !param.finiteICache;
    cfg.btbBanks = param.btbBanks;
    if (param.fetch == FetchPolicy::WeightedRoundRobin) {
        for (unsigned t = 0; t < param.threads; ++t)
            cfg.fetchWeights.push_back(1 + t % 3);
    }

    Processor cpu(cfg, prog);
    SimResult result = cpu.run();
    ASSERT_TRUE(result.finished);

    Interpreter interp(prog, param.threads);
    ASSERT_TRUE(interp.run());

    for (unsigned t = 0; t < param.threads; ++t) {
        for (RegIndex r = 1; r <= kLinkReg; ++r) {
            EXPECT_EQ(cpu.readReg(static_cast<ThreadId>(t), r),
                      interp.reg(static_cast<ThreadId>(t), r))
                << "seed " << param.seed << " thread " << t << " r"
                << unsigned{r};
        }
    }
    EXPECT_EQ(cpu.memory().image(), interp.memory())
        << "seed " << param.seed;
    EXPECT_EQ(result.committedInstructions,
              interp.totalInstructionCount());
}

std::vector<PropertyParam>
propertyParams()
{
    std::vector<PropertyParam> params;
    // Configuration axes exercised in rotation, several seeds each.
    const FetchPolicy fetches[] = {
        FetchPolicy::TrueRoundRobin, FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch, FetchPolicy::Adaptive,
        FetchPolicy::WeightedRoundRobin};
    const unsigned threads[] = {1, 2, 3, 4, 6};
    const unsigned su_sizes[] = {16, 32, 48, 64};
    std::uint64_t seed = 1000;
    for (unsigned i = 0; i < 60; ++i) {
        PropertyParam param;
        param.seed = ++seed;
        param.threads = threads[i % 5];
        param.fetch = fetches[i % 5];
        param.commit = (i % 3 == 0) ? CommitPolicy::LowestBlockOnly
                                    : CommitPolicy::FlexibleFourBlocks;
        param.rename = (i % 5 == 0) ? RenameScheme::Scoreboard1Bit
                                    : RenameScheme::FullRenaming;
        param.bypassing = i % 2 == 0;
        param.cacheWays = (i % 4 == 0) ? 1 : 2;
        param.suEntries = su_sizes[i % 4];
        param.withCalls = i % 2 == 1;
        param.partitionedCache = i % 7 == 0;
        param.finiteICache = i % 6 == 0;
        param.btbBanks = (i % 8 == 0) ? threads[i % 5] : 1;
        params.push_back(param);
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PipelineEquivalence,
                         ::testing::ValuesIn(propertyParams()));

} // namespace
} // namespace sdsp

/**
 * @file
 * Unit tests for instruction encoding/decoding and the opcode table.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcode.hh"

namespace sdsp
{
namespace
{

TEST(OpcodeTable, NamesAndClasses)
{
    EXPECT_STREQ(opName(Opcode::ADD), "ADD");
    EXPECT_STREQ(opName(Opcode::FDIV), "FDIV");
    EXPECT_EQ(opInfo(Opcode::MUL).fuClass, FuClass::IntMul);
    EXPECT_EQ(opInfo(Opcode::LD).fuClass, FuClass::Load);
    EXPECT_EQ(opInfo(Opcode::BEQ).fuClass, FuClass::Ctrl);
    EXPECT_EQ(opInfo(Opcode::FSQRT).fuClass, FuClass::FpDiv);
}

TEST(OpcodeTable, SwitchTriggers)
{
    // Paper section 5.1: integer divide, FP multiply/divide and
    // synchronization primitives trigger a Conditional Switch.
    EXPECT_TRUE(opInfo(Opcode::DIV).flags & kIsTrigger);
    EXPECT_TRUE(opInfo(Opcode::REM).flags & kIsTrigger);
    EXPECT_TRUE(opInfo(Opcode::FMUL).flags & kIsTrigger);
    EXPECT_TRUE(opInfo(Opcode::FDIV).flags & kIsTrigger);
    EXPECT_TRUE(opInfo(Opcode::SPIN).flags & kIsTrigger);
    EXPECT_FALSE(opInfo(Opcode::ADD).flags & kIsTrigger);
    EXPECT_FALSE(opInfo(Opcode::MUL).flags & kIsTrigger);
}

TEST(OpcodeTable, FlagConsistency)
{
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
        auto op = static_cast<Opcode>(i);
        const OpInfo &oi = opInfo(op);
        // Loads write a register and read a base.
        if (oi.flags & kIsLoad) {
            EXPECT_TRUE(oi.flags & kWritesRd) << oi.name;
            EXPECT_TRUE(oi.flags & kReadsRs1) << oi.name;
        }
        // Stores write no register.
        if (oi.flags & kIsStore) {
            EXPECT_FALSE(oi.flags & kWritesRd) << oi.name;
        }
        // Conditional branches read two sources, write none.
        if (oi.flags & kIsCondBr) {
            EXPECT_TRUE(oi.flags & kReadsRs1) << oi.name;
            EXPECT_TRUE(oi.flags & kReadsRs2) << oi.name;
            EXPECT_FALSE(oi.flags & kWritesRd) << oi.name;
        }
        // Control-class instructions are exactly the CT unit's.
        bool is_ct = oi.flags & (kIsCondBr | kIsDirJump | kIsIndJump |
                                 kIsHalt);
        EXPECT_EQ(is_ct, oi.fuClass == FuClass::Ctrl) << oi.name;
    }
}

TEST(Encoding, RFormatRoundTrip)
{
    Instruction inst = Instruction::makeR(Opcode::ADD, 127, 64, 1);
    EXPECT_EQ(Instruction::decode(inst.encode()), inst);
}

TEST(Encoding, IFormatRoundTripSigned)
{
    for (std::int32_t imm : {-512, -1, 0, 1, 511}) {
        Instruction inst = Instruction::makeI(Opcode::ADDI, 3, 4, imm);
        EXPECT_EQ(Instruction::decode(inst.encode()), inst) << imm;
    }
}

TEST(Encoding, LogicalImmediatesZeroExtend)
{
    // ORI accepts the full unsigned 10-bit range so that LUI+ORI
    // composes 27-bit constants.
    for (std::int32_t imm : {0, 511, 512, 1023}) {
        Instruction inst = Instruction::makeI(Opcode::ORI, 3, 4, imm);
        EXPECT_EQ(Instruction::decode(inst.encode()), inst) << imm;
    }
}

TEST(Encoding, BFormatRoundTrip)
{
    Instruction inst = Instruction::makeB(Opcode::BEQ, 10, 11, -200);
    EXPECT_EQ(Instruction::decode(inst.encode()), inst);
}

TEST(Encoding, JFormatRoundTrip)
{
    Instruction inst = Instruction::makeJ(Opcode::JAL, 31, 123456);
    EXPECT_EQ(Instruction::decode(inst.encode()), inst);
}

TEST(Encoding, UFormatRoundTrip)
{
    Instruction inst = Instruction::makeJ(Opcode::LUI, 5, 0x1FFFF);
    EXPECT_EQ(Instruction::decode(inst.encode()), inst);
}

TEST(Encoding, RegisterOverflowIsFatal)
{
    Instruction inst = Instruction::makeR(Opcode::ADD, 128, 0, 0);
    EXPECT_EXIT(inst.encode(), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(Encoding, ImmediateOverflowIsFatal)
{
    Instruction too_big = Instruction::makeI(Opcode::ADDI, 1, 2, 512);
    EXPECT_EXIT(too_big.encode(), ::testing::ExitedWithCode(1),
                "does not fit");
    Instruction ori_negative =
        Instruction::makeI(Opcode::ORI, 1, 2, -1);
    EXPECT_EXIT(ori_negative.encode(), ::testing::ExitedWithCode(1),
                "does not fit");
}

TEST(Encoding, BadOpcodeFieldIsFatal)
{
    InstWord word = 0xFF000000u;
    EXPECT_EXIT(Instruction::decode(word), ::testing::ExitedWithCode(1),
                "invalid opcode");
}

TEST(StaticTarget, BranchesAreRelativeJumpsAbsolute)
{
    Instruction branch = Instruction::makeB(Opcode::BNE, 1, 2, -5);
    EXPECT_EQ(branch.staticTarget(100), 95u);
    Instruction jump = Instruction::makeJ(Opcode::J, 0, 42);
    EXPECT_EQ(jump.staticTarget(100), 42u);
}

TEST(Disassembly, RepresentativeForms)
{
    EXPECT_EQ(Instruction::makeR(Opcode::ADD, 1, 2, 3).toString(),
              "ADD r1, r2, r3");
    EXPECT_EQ(Instruction::makeI(Opcode::LD, 4, 5, 16).toString(),
              "LD r4, 16(r5)");
    EXPECT_EQ(Instruction::makeB(Opcode::ST, 5, 4, 8).toString(),
              "ST r4, 8(r5)");
    EXPECT_EQ(Instruction::makeB(Opcode::BEQ, 1, 2, -3).toString(),
              "BEQ r1, r2, -3");
    EXPECT_EQ(Instruction::makeR(Opcode::HALT, 0, 0, 0).toString(),
              "HALT");
    EXPECT_EQ(Instruction::makeR(Opcode::TID, 7, 0, 0).toString(),
              "TID r7");
    EXPECT_EQ(Instruction::makeR(Opcode::JR, 0, 9, 0).toString(),
              "JR r9");
}

/** Round-trip every opcode through encode/decode with benign
 *  operands. */
class OpcodeRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OpcodeRoundTrip, EncodeDecodeIdentity)
{
    auto op = static_cast<Opcode>(GetParam());
    const OpInfo &oi = opInfo(op);
    Instruction inst;
    inst.op = op;
    switch (oi.format) {
      case Format::R:
        inst.rd = 1;
        inst.rs1 = 2;
        inst.rs2 = 3;
        break;
      case Format::I:
        inst.rd = 1;
        inst.rs1 = 2;
        inst.imm = 7;
        break;
      case Format::B:
        inst.rs1 = 1;
        inst.rs2 = 2;
        inst.imm = -7;
        break;
      case Format::J:
      case Format::U:
        inst.rd = 1;
        inst.imm = 1000;
        break;
    }
    EXPECT_EQ(Instruction::decode(inst.encode()), inst) << oi.name;
    EXPECT_FALSE(inst.toString().empty());
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::Range(0u, kNumOpcodes));

} // namespace
} // namespace sdsp

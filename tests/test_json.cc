/**
 * @file
 * Tests for the JSON writer: document structure, string escaping,
 * numeric round-tripping, and misuse detection.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/json.hh"

namespace sdsp
{
namespace
{

TEST(JsonWriter, EmptyObjectAndArray)
{
    {
        JsonWriter w;
        w.beginObject().endObject();
        EXPECT_EQ(w.str(), "{}");
    }
    {
        JsonWriter w;
        w.beginArray().endArray();
        EXPECT_EQ(w.str(), "[]");
    }
}

TEST(JsonWriter, ObjectFields)
{
    JsonWriter w;
    w.beginObject()
        .field("name", "LL1")
        .field("cycles", std::uint64_t{7528})
        .field("verified", true)
        .field("delta", -3)
        .endObject();
    EXPECT_EQ(w.str(), "{\"name\":\"LL1\",\"cycles\":7528,"
                       "\"verified\":true,\"delta\":-3}");
}

TEST(JsonWriter, NestedContainers)
{
    JsonWriter w;
    w.beginObject();
    w.key("runs").beginArray();
    w.beginObject().field("id", 1u).endObject();
    w.beginObject().field("id", 2u).endObject();
    w.endArray();
    w.key("empty").beginArray().endArray();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"runs\":[{\"id\":1},{\"id\":2}],\"empty\":[]}");
}

TEST(JsonWriter, ArrayCommas)
{
    JsonWriter w;
    w.beginArray().value("a").value(1u).value(false).null().endArray();
    EXPECT_EQ(w.str(), "[\"a\",1,false,null]");
}

TEST(JsonWriter, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escaped("plain"), "plain");
    EXPECT_EQ(JsonWriter::escaped("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(JsonWriter::escaped("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escaped("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escaped("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escaped("\r\b\f"), "\\r\\b\\f");
    EXPECT_EQ(JsonWriter::escaped(std::string("\x01\x1f")),
              "\\u0001\\u001f");
    // Multi-byte UTF-8 passes through untouched.
    EXPECT_EQ(JsonWriter::escaped("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, EscapingAppliesToKeysAndValues)
{
    JsonWriter w;
    w.beginObject().field("a\"b", "c\nd").endObject();
    EXPECT_EQ(w.str(), "{\"a\\\"b\":\"c\\nd\"}");
}

TEST(JsonWriter, IntegerExtremes)
{
    JsonWriter w;
    w.beginArray()
        .value(std::numeric_limits<std::uint64_t>::max())
        .value(std::numeric_limits<std::int64_t>::min())
        .endArray();
    EXPECT_EQ(w.str(),
              "[18446744073709551615,-9223372036854775808]");
}

TEST(JsonWriter, DoublesRoundTrip)
{
    // The writer picks the shortest decimal form that parses back to
    // the same double.
    for (double v : {0.0, 1.0, 0.1, -0.25, 1.0 / 3.0, 1e300, 6.25e-3,
                     123456.789, 0.9755590223608944}) {
        JsonWriter w;
        w.beginArray().value(v).endArray();
        std::string text = w.str();
        double parsed =
            std::stod(text.substr(1, text.size() - 2));
        EXPECT_EQ(parsed, v) << text;
    }
    // Integral doubles print without an exponent or decimals.
    JsonWriter w;
    w.beginArray().value(42.0).endArray();
    EXPECT_EQ(w.str(), "[42]");
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    JsonWriter w;
    w.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .value(-std::numeric_limits<double>::infinity())
        .endArray();
    EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriterDeathTest, MisuseIsDetected)
{
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginObject();
            w.value(1u); // value without key
        },
        "needs a key");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginObject();
            (void)w.str(); // unbalanced
        },
        "open container");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginArray();
            w.key("k"); // key inside array
        },
        "only valid inside an object");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginArray().endObject(); // mismatched end
        },
        "endObject");
}

} // namespace
} // namespace sdsp

/**
 * @file
 * Tests for the JSON writer: document structure, string escaping,
 * numeric round-tripping, and misuse detection.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/json.hh"

namespace sdsp
{
namespace
{

TEST(JsonWriter, EmptyObjectAndArray)
{
    {
        JsonWriter w;
        w.beginObject().endObject();
        EXPECT_EQ(w.str(), "{}");
    }
    {
        JsonWriter w;
        w.beginArray().endArray();
        EXPECT_EQ(w.str(), "[]");
    }
}

TEST(JsonWriter, ObjectFields)
{
    JsonWriter w;
    w.beginObject()
        .field("name", "LL1")
        .field("cycles", std::uint64_t{7528})
        .field("verified", true)
        .field("delta", -3)
        .endObject();
    EXPECT_EQ(w.str(), "{\"name\":\"LL1\",\"cycles\":7528,"
                       "\"verified\":true,\"delta\":-3}");
}

TEST(JsonWriter, NestedContainers)
{
    JsonWriter w;
    w.beginObject();
    w.key("runs").beginArray();
    w.beginObject().field("id", 1u).endObject();
    w.beginObject().field("id", 2u).endObject();
    w.endArray();
    w.key("empty").beginArray().endArray();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"runs\":[{\"id\":1},{\"id\":2}],\"empty\":[]}");
}

TEST(JsonWriter, ArrayCommas)
{
    JsonWriter w;
    w.beginArray().value("a").value(1u).value(false).null().endArray();
    EXPECT_EQ(w.str(), "[\"a\",1,false,null]");
}

TEST(JsonWriter, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escaped("plain"), "plain");
    EXPECT_EQ(JsonWriter::escaped("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(JsonWriter::escaped("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escaped("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escaped("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escaped("\r\b\f"), "\\r\\b\\f");
    EXPECT_EQ(JsonWriter::escaped(std::string("\x01\x1f")),
              "\\u0001\\u001f");
    // Multi-byte UTF-8 passes through untouched.
    EXPECT_EQ(JsonWriter::escaped("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, EscapingAppliesToKeysAndValues)
{
    JsonWriter w;
    w.beginObject().field("a\"b", "c\nd").endObject();
    EXPECT_EQ(w.str(), "{\"a\\\"b\":\"c\\nd\"}");
}

TEST(JsonWriter, IntegerExtremes)
{
    JsonWriter w;
    w.beginArray()
        .value(std::numeric_limits<std::uint64_t>::max())
        .value(std::numeric_limits<std::int64_t>::min())
        .endArray();
    EXPECT_EQ(w.str(),
              "[18446744073709551615,-9223372036854775808]");
}

TEST(JsonWriter, DoublesRoundTrip)
{
    // The writer picks the shortest decimal form that parses back to
    // the same double.
    for (double v : {0.0, 1.0, 0.1, -0.25, 1.0 / 3.0, 1e300, 6.25e-3,
                     123456.789, 0.9755590223608944}) {
        JsonWriter w;
        w.beginArray().value(v).endArray();
        std::string text = w.str();
        double parsed =
            std::stod(text.substr(1, text.size() - 2));
        EXPECT_EQ(parsed, v) << text;
    }
    // Integral doubles print without an exponent or decimals.
    JsonWriter w;
    w.beginArray().value(42.0).endArray();
    EXPECT_EQ(w.str(), "[42]");
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    JsonWriter w;
    w.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .value(-std::numeric_limits<double>::infinity())
        .endArray();
    EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriter, DoublesIgnoreCommaDecimalLocale)
{
    // A %g-based formatter emits "0,5" under a comma-decimal locale,
    // which is invalid JSON. The writer uses std::to_chars, which is
    // locale independent by definition; prove it under a real
    // comma-decimal locale when the host has one installed.
    const char *candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR",
                                "it_IT.UTF-8", "nl_NL.UTF-8"};
    const char *previous = std::setlocale(LC_ALL, nullptr);
    std::string saved = previous ? previous : "C";
    const char *active = nullptr;
    for (const char *name : candidates) {
        if (std::setlocale(LC_ALL, name) &&
            std::string(localeconv()->decimal_point) == ",") {
            active = name;
            break;
        }
    }
    if (!active) {
        std::setlocale(LC_ALL, saved.c_str());
        GTEST_SKIP() << "no comma-decimal locale installed";
    }

    JsonWriter w;
    w.beginArray().value(0.5).value(123456.789).value(42.0).endArray();
    std::string text = w.str();
    std::setlocale(LC_ALL, saved.c_str());

    EXPECT_EQ(text.find(','), text.rfind(',')) << text;
    EXPECT_EQ(text, "[0.5,123456.789,42]") << "locale " << active;
}

TEST(JsonWriter, RawValueSplicesVerbatim)
{
    JsonWriter w;
    w.beginObject();
    w.field("status", "ok");
    w.key("result").rawValue("{\"cycles\":7528,\"ipc\":1.25}");
    w.field("after", 1u);
    w.endObject();
    EXPECT_EQ(w.str(), "{\"status\":\"ok\",\"result\":"
                       "{\"cycles\":7528,\"ipc\":1.25},\"after\":1}");

    JsonWriter array;
    array.beginArray().rawValue("null").value(2u).endArray();
    EXPECT_EQ(array.str(), "[null,2]");
}

TEST(JsonWriterDeathTest, MisuseIsDetected)
{
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginObject();
            w.value(1u); // value without key
        },
        "needs a key");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginObject();
            (void)w.str(); // unbalanced
        },
        "open container");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginArray();
            w.key("k"); // key inside array
        },
        "only valid inside an object");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginArray().endObject(); // mismatched end
        },
        "endObject");
}

} // namespace
} // namespace sdsp
